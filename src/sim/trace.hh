/**
 * @file
 * Span-based request tracing on simulated ticks (DESIGN.md section 9).
 *
 * A Tracer records three event kinds, all stamped with simulated Ticks
 * rather than wall time:
 *
 *  - spans:    one per request or device-internal operation, opened at
 *              submission and closed at completion. Spans nest through
 *              an implicit stack - an ftl.write span opened while an
 *              ssd.blockWrite span is live becomes its child.
 *  - phases:   contiguous sub-intervals of the innermost live span
 *              (frontend, xfer, media, ...). The instrumented layers
 *              guarantee that the phases of a span partition it, which
 *              is what makes the per-phase sums reconcile with the
 *              end-to-end latency (tools/trace_dump --validate).
 *  - instants: point events. The 19 durability tracepoints
 *              (sim/tracepoint.hh) are recorded as instants through
 *              tracepointHit(), so fault injection and tracing share
 *              one instrumentation surface.
 *
 * Cross-domain request stitching (DESIGN.md section 14): a
 * TraceContext carries a request's trace id plus the global id of its
 * parent span across domain boundaries, where the implicit span stack
 * cannot reach. Every span is minted a global id
 * ((stream + 1) << 32 | per-tracer sequence) that survives append(),
 * so a span recorded in a shard's tracer can name its parent in the
 * host's tracer through Event::xparent and the merged trace still
 * forms one tree per request. Contexts are established either
 * explicitly (pushContext/popContext around a routed op's execution)
 * or by the engine when a Domain::post carries one.
 *
 * Determinism: the tracer has no clock and no randomness of its own -
 * events land in call order and carry only simulated ticks, global
 * ids are (stream, sequence) pairs and trace ids are caller-supplied
 * sequence numbers, so the same seed produces a byte-identical trace
 * file at any engine thread count.
 *
 * Cost: call sites hold a `Tracer *` and skip everything when none is
 * installed (one predictable branch). Defining BSSD_TRACING_DISABLED
 * (CMake option BSSD_DISABLE_TRACING) additionally compiles every
 * public entry point down to an empty inline body, for hot-path builds
 * that must not pay even the branch.
 */

#ifndef BSSD_SIM_TRACE_HH
#define BSSD_SIM_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/fault.hh"
#include "sim/ticks.hh"
#include "sim/tracepoint.hh"

namespace bssd::sim
{

/** True when tracing is compiled in (see BSSD_TRACING_DISABLED). */
#ifdef BSSD_TRACING_DISABLED
inline constexpr bool traceCompiled = false;
#else
inline constexpr bool traceCompiled = true;
#endif

/** Identifier of a live or finished span; 0 means "no span". */
using SpanId = std::uint32_t;

/**
 * A request identity carried across domain boundaries: the request's
 * trace id plus the global id of the span that caused the hop. Both 0
 * when no request is in scope (tracing disabled or background work).
 */
struct TraceContext
{
    /** Request (trace) id; 0 = none. */
    std::uint64_t trace = 0;
    /** Global id (Tracer::mintGid) of the parent span; 0 = none. */
    std::uint64_t parent = 0;
};

/**
 * Deterministic span/phase/instant recorder. One instance per rig,
 * single-threaded (the sweep-harness invariant), installed into the
 * component layers next to the FaultInjector.
 */
class Tracer
{
  public:
    struct Event
    {
        enum class Kind : std::uint8_t { span, phase, instant };

        Kind kind = Kind::instant;
        /** Interned category (component) string id. */
        std::uint32_t cat = 0;
        /** Interned name string id. */
        std::uint32_t name = 0;
        /** Span id (spans only; phases/instants leave it 0). */
        SpanId id = 0;
        /** Enclosing span at record time, or 0 at top level. */
        SpanId parent = 0;
        /** Request (trace) id, or 0 when not part of a request. */
        std::uint64_t trace = 0;
        /** Globally unique span id (spans only); stable across
         *  append(), unlike the local id/parent pair. */
        std::uint64_t gid = 0;
        /** Cross-tracer parent span's gid (top-level spans adopted by
         *  a TraceContext only; 0 when `parent` carries the link). */
        std::uint64_t xparent = 0;
        Tick start = 0;
        Tick end = 0;
    };

    /** Aggregated per-phase latency row (see phaseBreakdown()). */
    struct PhaseStat
    {
        std::string cat;
        std::string name;
        std::uint64_t count = 0;
        std::uint64_t totalTicks = 0;
        std::uint64_t minTicks = 0;
        std::uint64_t maxTicks = 0;
        std::uint64_t p50 = 0;
        std::uint64_t p99 = 0;
    };

    /** @name Recording @{ */

    /**
     * Open a span for one operation. @p cat is the component lane
     * ("ssd", "ftl", "ba", ...), @p name the operation. Returns the
     * span's id; pass it to endSpan() when the operation's completion
     * tick is known. While live, the span is the implicit parent of
     * nested spans, phases and instants.
     */
    SpanId
    beginSpan(const char *cat, const char *name, Tick start)
    {
        if constexpr (traceCompiled)
            return doBeginSpan(cat, name, start);
        return 0;
    }

    /** Close span @p id at @p end. Ignores id 0 (disabled tracer). */
    void
    endSpan(SpanId id, Tick end)
    {
        if constexpr (traceCompiled)
            doEndSpan(id, end);
    }

    /**
     * Record one phase [@p start, @p end) of the innermost live span.
     * The caller is responsible for phases partitioning their span.
     */
    void
    phase(const char *name, Tick start, Tick end)
    {
        if constexpr (traceCompiled)
            doPhase(name, start, end);
    }

    /** Record a point event under the innermost live span. */
    void
    instant(const char *cat, const char *name, Tick at)
    {
        if constexpr (traceCompiled)
            doInstant(cat, name, at);
    }

    /**
     * Record a complete span [@p start, @p end) outside the implicit
     * stack. This is how overlapping request-root spans are recorded
     * (many routed ops are in flight at once, so begin/end nesting
     * would fabricate parent links): the span's tree position comes
     * entirely from @p ctx (trace id + cross-tracer parent) and the
     * caller-minted @p gid. @p gid 0 mints one here.
     * @return the span's gid (0 when tracing is off).
     */
    std::uint64_t
    recordSpan(const char *cat, const char *name, Tick start, Tick end,
               TraceContext ctx, std::uint64_t gid = 0)
    {
        if constexpr (traceCompiled)
            return doRecordSpan(cat, name, start, end, ctx, gid);
        return 0;
    }

    /** Innermost live span, or 0. */
    SpanId
    currentSpan() const
    {
        if constexpr (traceCompiled)
            return stack_.empty() ? 0 : stack_.back();
        return 0;
    }

    /** @name Trace-context propagation @{ */

    /**
     * Stream index for global span ids: gids mint as
     * ((stream + 1) << 32) | sequence. Give each per-domain tracer a
     * distinct stream (the domain id) before recording, so gids stay
     * unique after the merge.
     */
    void
    setStream(std::uint32_t stream)
    {
        if constexpr (traceCompiled)
            stream_ = stream;
    }

    /** Mint the next global span id (0 while disabled). */
    std::uint64_t
    mintGid()
    {
        if constexpr (traceCompiled) {
            if (enabled_)
                return (std::uint64_t(stream_) + 1) << 32 | ++gidSeq_;
        }
        return 0;
    }

    /**
     * Enter @p ctx: until the matching popContext(), top-level spans
     * adopt ctx.trace and link to ctx.parent through Event::xparent
     * (nested spans keep inheriting from their local parent). No-op
     * while disabled — zero work, zero allocation.
     */
    void
    pushContext(TraceContext ctx)
    {
        if constexpr (traceCompiled) {
            if (enabled_ && ctx.trace != 0)
                ctxStack_.push_back(ctx);
        }
    }

    void
    popContext()
    {
        if constexpr (traceCompiled) {
            if (enabled_ && !ctxStack_.empty())
                ctxStack_.pop_back();
        }
    }

    /**
     * The identity a cross-domain hop should carry: the innermost
     * live span's (trace, gid) when one is live, else the innermost
     * pushed context, else empty.
     */
    TraceContext
    currentContext() const
    {
        if constexpr (traceCompiled) {
            for (std::size_t i = stack_.size(); i-- > 0;) {
                const Event &e = events_[stack_[i] - 1];
                if (e.trace != 0)
                    return TraceContext{e.trace, e.gid};
            }
            if (!ctxStack_.empty())
                return ctxStack_.back();
        }
        return TraceContext{};
    }

    /** Depth of the pushed-context stack (tests; 0 while disabled). */
    std::size_t
    contextDepth() const
    {
        if constexpr (traceCompiled)
            return ctxStack_.size();
        return 0;
    }

    /** @} */

    /** Runtime enable toggle (records nothing while disabled). */
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return traceCompiled && enabled_; }

    /** @} */

    /** @name Inspection and export @{ */

    const std::vector<Event> &events() const { return events_; }

    /** Resolve an interned string id (Event::cat / Event::name). */
    const std::string &string(std::uint32_t id) const;

    /** Drop every recorded event (string table survives). */
    void clear();

    /**
     * Append every event of @p other to this tracer, re-interning
     * strings and rebasing span ids/parent links. Multi-domain runs
     * give each domain its own tracer (single-threaded, like the
     * per-rig sweep invariant) and merge them in domain-id order
     * afterwards — a fixed order, so the merged trace stays a pure
     * function of the run and byte-identical across thread counts.
     * @pre other has no live (unclosed) spans.
     */
    void append(const Tracer &other);

    /**
     * Emit the trace as Chrome trace_event JSON ("X" complete events
     * for spans and phases, "i" instants), loadable by Perfetto and
     * chrome://tracing. Events are stably ordered by start tick, ts
     * and dur are exact tick-derived microsecond strings, and args
     * carry the raw tick values - the output of a same-seed run is
     * byte-identical.
     */
    void writeChromeJson(std::ostream &os) const;

    /**
     * Aggregate phase events into per-(category, name) latency rows,
     * sorted by category then name. Percentiles are exact (computed
     * over every recorded duration).
     */
    std::vector<PhaseStat> phaseBreakdown() const;

    /** @} */

  private:
    SpanId doBeginSpan(const char *cat, const char *name, Tick start);
    void doEndSpan(SpanId id, Tick end);
    std::uint64_t doRecordSpan(const char *cat, const char *name,
                               Tick start, Tick end, TraceContext ctx,
                               std::uint64_t gid);
    void doPhase(const char *name, Tick start, Tick end);
    void doInstant(const char *cat, const char *name, Tick at);

    std::uint32_t intern(const char *s);

    bool enabled_ = true;
    std::uint32_t stream_ = 0;
    std::uint64_t gidSeq_ = 0;
    std::vector<Event> events_;
    std::vector<SpanId> stack_;
    std::vector<TraceContext> ctxStack_;
    std::vector<std::string> strings_;
    std::map<std::string, std::uint32_t> internIds_;
};

/**
 * The shared fault-injection / tracing surface. Every durability
 * tracepoint call site announces the hit to both sinks through this
 * helper; the trace instant is recorded *before* FaultInjector::hit()
 * so that a thrown PowerCut still leaves the protocol edge visible in
 * the trace. Either pointer may be null.
 */
inline void
tracepointHit(FaultInjector *faults, Tracer *tracer, Tp tp, Tick at)
{
    if (tracer)
        tracer->instant("tp", tpName(tp), at);
    if (faults)
        faults->hit(tp);
}

} // namespace bssd::sim

#endif // BSSD_SIM_TRACE_HH
