#include "sim/engine.hh"

#include <algorithm>
#include <utility>

#ifdef BSSD_DOMAIN_CHECK
#include <map>
#include <mutex>
#endif

#include "sim/logging.hh"
#include "sim/metrics.hh"

namespace bssd::sim
{

#ifdef BSSD_DOMAIN_CHECK

namespace
{

/** One adopted allocation: [begin, begin+bytes) owned by a domain. */
struct OwnSpan
{
    std::size_t bytes;
    Domain *owner;
    const char *what;
};

/**
 * Process-wide ownership registry, keyed by span begin address. A
 * lookup steps back from upper_bound to the innermost covering span;
 * a nested member adopted on its own can sit address-wise between an
 * offending pointer and the outer span that covers it, so the walk
 * retries a few non-covering begins before giving up (nesting in this
 * codebase is at most rig > device; 16 is generous).
 *
 * Mutex-guarded: adoption happens at rig construction and guards run
 * only in checked builds, so the lock never costs a release build
 * anything.
 */
std::mutex ownMutex;
std::map<const void *, OwnSpan> ownSpans;

/** Domain whose window this thread is currently executing. */
thread_local Domain *tlsCurrentDomain = nullptr;

} // namespace

void
Domain::adopt(const void *obj, std::size_t bytes, const char *what)
{
    if (obj == nullptr || bytes == 0)
        return;
    std::lock_guard<std::mutex> lk(ownMutex);
    ownSpans[obj] = OwnSpan{bytes, this, what};
}

void
Domain::release(const void *obj)
{
    std::lock_guard<std::mutex> lk(ownMutex);
    ownSpans.erase(obj);
}

Domain *
Domain::current()
{
    return tlsCurrentDomain;
}

void
detail::ownGuard(const void *obj)
{
    Domain *cur = tlsCurrentDomain;
    if (cur == nullptr)
        return;
    Domain *owner = nullptr;
    const char *what = nullptr;
    {
        std::lock_guard<std::mutex> lk(ownMutex);
        auto it = ownSpans.upper_bound(obj);
        for (int step = 0; step < 16 && it != ownSpans.begin();
             ++step) {
            --it;
            const char *begin =
                static_cast<const char *>(it->first);
            if (static_cast<const char *>(obj) <
                begin + it->second.bytes) {
                owner = it->second.owner;
                what = it->second.what;
                break;
            }
        }
    }
    if (owner == nullptr || owner == cur)
        return;
    // A rig whose domain never joined an engine (the replicated-WAL
    // follower) is driven by direct calls from the adjacent domain by
    // design; a domain on a different engine cannot share this
    // engine's threads.
    if (owner->engine() == nullptr || owner->engine() != cur->engine())
        return;
    panic("domain-ownership violation: thread executing domain '",
          cur->name(), "' touched '", what, "' owned by domain '",
          owner->name(), "'");
}

#endif // BSSD_DOMAIN_CHECK

ParallelEngine::ParallelEngine(unsigned threads)
    : threads_(threads == 0 ? 1 : threads)
{}

ParallelEngine::~ParallelEngine()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            stop_ = true;
        }
        roundStart_.notify_all();
        for (std::thread &w : workers_)
            w.join();
    }
}

std::uint32_t
ParallelEngine::add(Domain &d)
{
    if (d.engine_ != nullptr)
        panic("domain '", d.name(), "' already attached to an engine");
    const auto id = static_cast<std::uint32_t>(domains_.size());
    d.engine_ = this;
    d.id_ = id;
    domains_.push_back(&d);
    for (std::vector<Tick> &row : look_)
        row.push_back(maxTick);
    look_.emplace_back(domains_.size(), maxTick);
    minInLook_.push_back(maxTick);
    next_.push_back(maxTick);
    windows_.push_back(0);
    perFired_.push_back(0);
    errors_.emplace_back();
    domFired_.push_back(0);
    stallTicks_.push_back(0);
    for (std::vector<std::uint64_t> &row : boundBy_)
        row.push_back(0);
    boundBy_.emplace_back(domains_.size(), 0);
    boundByHorizon_.push_back(0);
    return id;
}

void
ParallelEngine::connect(Domain &src, Domain &dst, Tick lookahead)
{
    if (src.engine_ != this || dst.engine_ != this)
        panic("connect: both domains must be registered first");
    if (&src == &dst)
        panic("connect: a domain does not post to itself");
    if (lookahead == 0)
        panic("connect: zero lookahead would stall the engine");
    look_[src.id_][dst.id_] = lookahead;
    minInLook_[dst.id_] = std::min(minInLook_[dst.id_], lookahead);
}

Tick
ParallelEngine::lookahead(std::uint32_t src, std::uint32_t dst) const
{
    if (src >= look_.size() || dst >= look_.size())
        return maxTick;
    return look_[src][dst];
}

void
Domain::post(Domain &target, Tick when, EventQueue::Callback cb)
{
    if (engine_ == nullptr || target.engine_ != engine_)
        panic("post from '", name_, "' to '", target.name_,
              "': both domains must share an engine");
    const Tick look = engine_->lookahead(id_, target.id_);
    if (look == maxTick)
        panic("post from '", name_, "' to '", target.name_,
              "': no channel (ParallelEngine::connect missing)");
    if (when < queue_.now() || when - queue_.now() < look)
        panic("post from '", name_, "' to '", target.name_,
              "' at ", when, " violates lookahead ", look, " (now ",
              queue_.now(), ")");
    outbox_.push_back(Message{when, nextSeq_++, target.id_,
                              std::move(cb)});
}

void
Domain::post(Domain &target, Tick when, TraceContext ctx,
             EventQueue::Callback cb)
{
    if constexpr (traceCompiled) {
        if (ctx.trace != 0) {
            // Wrap the callback so the request identity is in scope in
            // the TARGET domain while it runs: spans the callback
            // records there stitch to the sender's span tree. The
            // tracer pointer is read at delivery time (inside the
            // target's window), honoring the domain-ownership rule.
            Domain *tgt = &target;
            post(target, when,
                 [tgt, ctx, inner = std::move(cb)]() mutable {
                     Tracer *tr = tgt->tracer_;
                     if (tr)
                         tr->pushContext(ctx);
                     inner();
                     if (tr)
                         tr->popContext();
                 });
            return;
        }
    }
    post(target, when, std::move(cb));
}

void
ParallelEngine::deliverOutboxes()
{
    mailbag_.clear();
    for (Domain *d : domains_) {
        for (Domain::Message &m : d->outbox_) {
            mailbag_.push_back(Routed{m.when, d->id_, m.seq, m.target,
                                      std::move(m.cb)});
        }
        d->outbox_.clear();
    }
    if (mailbag_.empty())
        return;
    std::sort(mailbag_.begin(), mailbag_.end(),
              [](const Routed &a, const Routed &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.sender != b.sender)
                      return a.sender < b.sender;
                  return a.seq < b.seq;
              });
    for (Routed &m : mailbag_)
        domains_[m.target]->queue_.schedule(m.when, std::move(m.cb));
    delivered_ += mailbag_.size();
    mailbag_.clear();
}

Tick
ParallelEngine::windowFor(std::size_t d, Tick until) const
{
    // Events AT the horizon must fire, and runWindow's bound is
    // strict, so the cap is one past the horizon.
    Tick w = satAdd(until, 1);
    windowBoundBy_ = kNoBound;
    for (std::size_t s = 0; s < domains_.size(); ++s) {
        if (s == d || look_[s][d] == maxTick)
            continue;
        const Tick bound = satAdd(next_[s], look_[s][d]);
        if (bound < w) {
            w = bound;
            windowBoundBy_ = static_cast<std::uint32_t>(s);
        }
    }
    return w;
}

void
ParallelEngine::executeDomain(std::size_t d)
{
    try {
#ifdef BSSD_DOMAIN_CHECK
        // Mark this thread as executing d's window for the ownership
        // guards; restored on every exit path (including the panic a
        // guard throws, which unwinds through here into errors_[d]).
        struct Scope
        {
            Domain *prev;
            explicit Scope(Domain *dom) : prev(tlsCurrentDomain)
            {
                tlsCurrentDomain = dom;
            }
            ~Scope() { tlsCurrentDomain = prev; }
        } scope(domains_[d]);
#endif
        perFired_[d] = domains_[d]->queue_.runWindow(windows_[d]);
    } catch (...) {
        perFired_[d] = 0;
        errors_[d] = std::current_exception();
    }
}

void
ParallelEngine::startWorkers()
{
    const unsigned spawn = threads_ - 1;
    workers_.reserve(spawn);
    for (unsigned w = 1; w <= spawn; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

void
ParallelEngine::workerLoop(unsigned self)
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
        roundStart_.wait(lk, [&] { return stop_ || roundGen_ != seen; });
        if (stop_)
            return;
        seen = roundGen_;
        lk.unlock();
        for (std::size_t d = self; d < domains_.size(); d += threads_)
            executeDomain(d);
        lk.lock();
        if (--busy_ == 0)
            roundDone_.notify_all();
    }
}

void
ParallelEngine::runRound()
{
    const bool parallel = threads_ > 1 && domains_.size() > 1;
    if (!parallel) {
        // Identical window schedule, inline, in domain-id order: this
        // is what makes threaded runs bit-identical to serial ones.
        for (std::size_t d = 0; d < domains_.size(); ++d)
            executeDomain(d);
    } else {
        if (workers_.empty())
            startWorkers();
        {
            std::lock_guard<std::mutex> lk(mutex_);
            busy_ = threads_ - 1;
            ++roundGen_;
        }
        roundStart_.notify_all();
        for (std::size_t d = 0; d < domains_.size(); d += threads_)
            executeDomain(d);
        std::unique_lock<std::mutex> lk(mutex_);
        roundDone_.wait(lk, [&] { return busy_ == 0; });
    }
    ++rounds_;
    for (std::size_t d = 0; d < domains_.size(); ++d) {
        fired_ += perFired_[d];
        domFired_[d] += perFired_[d];
        // The whole round completes before the first (by id) failure
        // propagates — the same behavior at every thread count.
        if (errors_[d]) {
            std::exception_ptr e = errors_[d];
            std::fill(errors_.begin(), errors_.end(),
                      std::exception_ptr{});
            std::rethrow_exception(e);
        }
    }
}

std::uint64_t
ParallelEngine::run(Tick until)
{
    if (domains_.empty())
        panic("ParallelEngine::run with no domains");
    const std::uint64_t before = fired_;
    for (;;) {
        deliverOutboxes();
        Tick globalMin = maxTick;
        for (std::size_t d = 0; d < domains_.size(); ++d) {
            next_[d] = domains_[d]->queue_.nextEventTime();
            globalMin = std::min(globalMin, next_[d]);
        }
        if (globalMin > until)
            break;
        // Lower next_[d] to the earliest-output-time bound: an idle
        // domain can still be woken by feedback, but no causal chain
        // starts before globalMin and reaching d costs at least its
        // cheapest inbound lookahead.
        for (std::size_t d = 0; d < domains_.size(); ++d) {
            next_[d] = std::min(next_[d],
                                satAdd(globalMin, minInLook_[d]));
        }
        Tick roundMax = 0;
        for (std::size_t d = 0; d < domains_.size(); ++d) {
            windows_[d] = windowFor(d, until);
            if (windowBoundBy_ == kNoBound)
                ++boundByHorizon_[d];
            else
                ++boundBy_[d][windowBoundBy_];
            roundMax = std::max(roundMax, windows_[d]);
        }
        // Telemetry over the schedule (identical at any thread
        // count): window width is the work a round exposes to each
        // domain, the stall is how far short of the round's widest
        // window it stops — the barrier wait in simulated ticks.
        for (std::size_t d = 0; d < domains_.size(); ++d) {
            windowWidth_.record(windows_[d] - globalMin);
            stallTicks_[d] += roundMax - windows_[d];
        }
        if (roundTracer_ != nullptr && roundTracer_->enabled()) {
            roundTracer_->recordSpan("engine", "round", globalMin,
                                     roundMax, TraceContext{});
        }
        runRound();
    }
    for (Domain *d : domains_) {
        if (until > d->queue_.now())
            d->queue_.advanceTo(until);
    }
    now_ = until;
    return fired_ - before;
}

std::uint64_t
ParallelEngine::domainEventsFired(std::uint32_t d) const
{
    return domFired_.at(d);
}

std::uint64_t
ParallelEngine::stallTicks(std::uint32_t d) const
{
    return stallTicks_.at(d);
}

std::uint64_t
ParallelEngine::horizonBoundRounds(std::uint32_t d) const
{
    return boundByHorizon_.at(d);
}

std::uint64_t
ParallelEngine::channelBoundRounds(std::uint32_t d,
                                   std::uint32_t src) const
{
    return boundBy_.at(d).at(src);
}

namespace
{

/** Lowercase a domain name into one metric-path segment. */
std::string
metricSegment(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (c >= 'A' && c <= 'Z')
            out += static_cast<char>(c - 'A' + 'a');
        else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
            out += c;
        else
            out += '_';
    }
    if (out.empty() || out.front() == '_')
        out.insert(out.begin(), 'd');
    return out;
}

} // namespace

void
ParallelEngine::registerMetrics(MetricRegistry &reg,
                                const std::string &prefix) const
{
    reg.addGauge(prefix + ".rounds", [this] {
        return static_cast<double>(rounds_);
    });
    reg.addGauge(prefix + ".messages", [this] {
        return static_cast<double>(delivered_);
    });
    // bssd-lint: allow(xcheck-metric-path) engine total vs per-domain
    reg.addGauge(prefix + ".events", [this] {
        return static_cast<double>(fired_);
    });
    reg.addHistogram(prefix + ".window_width", windowWidth_);
    for (std::uint32_t d = 0; d < domains_.size(); ++d) {
        const std::string dp =
            prefix + "." + metricSegment(domains_[d]->name());
        // bssd-lint: allow(xcheck-metric-path) per-domain vs engine total
        reg.addGauge(dp + ".events", [this, d] {
            return static_cast<double>(domFired_[d]);
        });
        reg.addGauge(dp + ".stall_ticks", [this, d] {
            return static_cast<double>(stallTicks_[d]);
        });
        reg.addGauge(dp + ".bound_horizon", [this, d] {
            return static_cast<double>(boundByHorizon_[d]);
        });
        for (std::uint32_t s = 0; s < domains_.size(); ++s) {
            if (s == d || look_[s][d] == maxTick)
                continue;
            reg.addGauge(dp + ".bound_from_" +
                             metricSegment(domains_[s]->name()),
                         [this, d, s] {
                             return static_cast<double>(boundBy_[d][s]);
                         });
        }
    }
}

} // namespace bssd::sim
