/**
 * @file
 * Deterministic fault injection for durability testing (DESIGN.md
 * section 8).
 *
 * A FaultInjector is a per-simulation object installed into every
 * layer of one rig (NAND, FTL, SSD frontend, PCIe link, WC buffer,
 * host PM, BA extensions). Layers consult it at named durability
 * tracepoints (sim/tracepoint.hh); the injector counts hits, may
 * declare a component-level fault (NAND program failure, partial WC
 * line loss, ...), and may throw PowerCut to crash the simulation at
 * an exact protocol stage.
 *
 * Determinism contract: the injector draws randomness only from its
 * own Rng seeded by FaultPlan::seed, and all scheduled faults are
 * keyed by per-tracepoint hit indices. The same op stream driven
 * against the same plan therefore produces the same hit sequence, the
 * same fault schedule and the same crash point, bit for bit - which is
 * what lets the crash-point campaign print (seed, crash-point index)
 * as a complete repro line.
 */

#ifndef BSSD_SIM_FAULT_HH
#define BSSD_SIM_FAULT_HH

#include <array>
#include <cstdint>
#include <exception>
#include <vector>

#include "sim/rng.hh"
#include "sim/ticks.hh"
#include "sim/tracepoint.hh"

namespace bssd::sim
{

/**
 * Thrown by FaultInjector::hit() when an armed power cut fires. The
 * harness catches it at the op-stream level, pulls the plug on the rig
 * and verifies recovery; it must never escape a test unhandled.
 */
class PowerCut : public std::exception
{
  public:
    PowerCut(Tp tp, std::uint64_t global_hit) noexcept
        : tp_(tp), globalHit_(global_hit)
    {}

    const char *what() const noexcept override { return "sim::PowerCut"; }

    /** Tracepoint whose hit triggered the cut. */
    Tp tracepoint() const noexcept { return tp_; }
    /** Global durability-hit index at which the cut fired. */
    std::uint64_t globalHit() const noexcept { return globalHit_; }

  private:
    Tp tp_;
    std::uint64_t globalHit_;
};

/**
 * One scheduled component fault: the @p hitIndex-th hit of @p tp (per
 * tracepoint counting, zero based) misbehaves.
 */
struct ScheduledFault
{
    Tp tp = Tp::count_;
    std::uint64_t hitIndex = 0;
};

/** The full, declarative description of a run's injected faults. */
struct FaultPlan
{
    /** Seed for all injector-internal randomness. */
    std::uint64_t seed = 1;

    /** @name NAND media faults @{ */
    /** Per-tracepoint hit indices of nand.program hits that fail
     *  (grown bad block; the FTL must retire and remap). */
    std::vector<std::uint64_t> nandProgramFailHits;
    /** Hit indices of nand.erase hits that fail. */
    std::vector<std::uint64_t> nandEraseFailHits;
    /** Additionally fail each program/erase with this probability
     *  (deterministic given the seed). */
    double nandProgramFailRate = 0.0;
    double nandEraseFailRate = 0.0;
    /** @} */

    /** @name Host / interconnect power-cut faults @{ */
    /**
     * On power cut, each dirty WC line loses a random suffix instead
     * of the whole line: a prefix of its valid bytes had already been
     * posted and arrives at the device (torn-line hazard).
     */
    bool wcPartialLineOnPowerCut = false;
    /**
     * On power cut, posted TLPs that arrived within this window before
     * the cut are dropped anyway (queued in the root complex, never
     * committed to device DRAM). Bytes confirmed by a write-verify
     * read are already settled and cannot be dropped - the hazard only
     * affects unacknowledged data, as on real hardware.
     */
    Tick postedDropWindow = 0;
    /** @} */

    /** @name Capacitor degradation @{ */
    /**
     * Scale factor on the back-up energy available at power-loss time
     * (aged electrolytics). Below 1.0 the BA dump may run out of
     * energy mid-sequence and persist only a prefix of the buffer.
     */
    double capacitorEnergyScale = 1.0;
    /** @} */
};

/**
 * The per-simulation fault injector. One instance is shared by every
 * layer of one rig; it is not thread-safe (one rig == one thread, the
 * sweep-harness invariant).
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan = {});

    const FaultPlan &plan() const { return plan_; }

    /** @name Tracepoint protocol (called by instrumented layers) @{ */

    /**
     * Announce one hit of @p tp. Counts the hit and, if a power cut is
     * armed at the current global hit index, throws PowerCut (then
     * disarms, so recovery-time activity runs unharmed).
     */
    void hit(Tp tp);

    /** Hits of @p tp so far. */
    std::uint64_t hits(Tp tp) const
    {
        return perTp_[static_cast<std::size_t>(tp)];
    }

    /** Total durability hits across all tracepoints. */
    std::uint64_t totalHits() const { return globalHits_; }

    /** @} */

    /** @name Crash-point control (campaign harness) @{ */

    /** Arm a power cut at global hit index @p n (0-based). */
    void armCrashAtHit(std::uint64_t n)
    {
        armedHit_ = n;
        cutFired_ = false;
    }

    /** Disarm any pending power cut. */
    void disarm() { armedHit_ = noCrash; }

    /** True once an armed power cut has fired. */
    bool cutFired() const { return cutFired_; }

    /** @} */

    /** @name Hit recording (campaign enumeration + determinism) @{ */

    /** Record the tracepoint of every hit into hitLog(). */
    void setRecording(bool on) { recording_ = on; }

    const std::vector<Tp> &hitLog() const { return hitLog_; }

    /** @} */

    /** @name Component fault queries @{ */

    /** Consult-and-advance: does the current nand.program hit fail?
     *  (Call exactly once per program, before hit().) */
    bool failNandProgram();
    /** Does the current nand.erase hit fail? */
    bool failNandErase();

    bool wcPartialLineOnPowerCut() const
    {
        return plan_.wcPartialLineOnPowerCut;
    }

    /**
     * Deterministic split point for one torn WC line: how many of its
     * @p validBytes leading valid bytes reached the device.
     */
    std::uint64_t wcPartialKeep(std::uint64_t validBytes);

    Tick postedDropWindow() const { return plan_.postedDropWindow; }

    double capacitorEnergyScale() const
    {
        return plan_.capacitorEnergyScale;
    }

    /** @} */

    /** Faults actually delivered (diagnostics). */
    std::uint64_t nandProgramFailsInjected() const { return progFails_; }
    std::uint64_t nandEraseFailsInjected() const { return eraseFails_; }

  private:
    static constexpr std::uint64_t noCrash = ~std::uint64_t(0);

    FaultPlan plan_;
    Rng rng_;

    std::array<std::uint64_t, tpCount> perTp_{};
    std::uint64_t globalHits_ = 0;
    std::uint64_t armedHit_ = noCrash;
    bool cutFired_ = false;

    bool recording_ = false;
    std::vector<Tp> hitLog_;

    std::uint64_t progFails_ = 0;
    std::uint64_t eraseFails_ = 0;

    static bool scheduled(const std::vector<std::uint64_t> &hits,
                          std::uint64_t index);
};

} // namespace bssd::sim

#endif // BSSD_SIM_FAULT_HH
