/**
 * @file
 * Lightweight statistics: counters and latency distributions.
 *
 * Every experiment in the benchmark harness reports through these.
 * Distribution keeps exact min/max/mean plus a bounded reservoir for
 * percentile queries, so memory stays constant no matter how many
 * samples a run records.
 */

#ifndef BSSD_SIM_STATS_HH
#define BSSD_SIM_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/ticks.hh"

namespace bssd::sim
{

/** A named monotonic counter. */
class Counter
{
  public:
    explicit Counter(std::string name = "counter")
        : name_(std::move(name))
    {}

    void add(std::uint64_t v = 1) { value_ += v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

/**
 * Streaming distribution with percentile support.
 *
 * Uses reservoir sampling (Vitter's algorithm R) with a fixed-size
 * reservoir; exact statistics (count/sum/min/max) are always precise,
 * percentiles are estimates over the reservoir.
 */
class Distribution
{
  public:
    /**
     * @param name          for reporting
     * @param reservoirSize number of retained samples for percentiles
     */
    explicit Distribution(std::string name = "dist",
                          std::size_t reservoirSize = 16384);

    /** Record one sample. */
    void sample(std::uint64_t v);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /**
     * Estimated p-th percentile (p in [0, 100]).
     * @return 0 when no samples were recorded.
     */
    std::uint64_t percentile(double p) const;

    void reset();
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::size_t cap_;
    std::vector<std::uint64_t> reservoir_;
    mutable std::vector<std::uint64_t> sorted_;
    mutable bool sortedValid_ = false;
    Rng rng_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t(0);
    std::uint64_t max_ = 0;
};

} // namespace bssd::sim

#endif // BSSD_SIM_STATS_HH
