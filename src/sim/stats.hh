/**
 * @file
 * Lightweight statistics: counters, latency distributions and a
 * fixed-footprint histogram for hot paths.
 *
 * Every experiment in the benchmark harness reports through these.
 * Distribution keeps exact min/max/mean plus a bounded reservoir for
 * percentile queries, so memory stays constant no matter how many
 * samples a run records. Histogram trades a bounded relative error
 * for a record() that is a handful of bit operations — the right tool
 * for per-I/O instrumentation inside the device models.
 */

#ifndef BSSD_SIM_STATS_HH
#define BSSD_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/ticks.hh"

namespace bssd::sim
{

/** A named monotonic counter. */
class Counter
{
  public:
    explicit Counter(std::string name = "counter")
        : name_(std::move(name))
    {}

    void add(std::uint64_t v = 1) { value_ += v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

/**
 * Streaming distribution with percentile support.
 *
 * Uses reservoir sampling (Vitter's algorithm R) with a fixed-size
 * reservoir; exact statistics (count/sum/min/max) are always precise,
 * percentiles are estimates over the reservoir.
 *
 * percentile() caches the sorted reservoir; once the reservoir is full
 * most samples do not displace a slot, so the cache survives across
 * interleaved sample()/percentile() calls and repeated percentile
 * queries cost one binary-search-free lookup instead of a sort.
 */
class Distribution
{
  public:
    /**
     * @param name          for reporting
     * @param reservoirSize number of retained samples for percentiles
     */
    explicit Distribution(std::string name = "dist",
                          std::size_t reservoirSize = 16384);

    /** Record one sample. */
    void sample(std::uint64_t v);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /**
     * Estimated p-th percentile (p in [0, 100]; out-of-range values
     * clamp to the min/max).
     * @return 0 when no samples were recorded.
     */
    std::uint64_t percentile(double p) const;

    /**
     * Fold @p other into this distribution. Exact statistics
     * (count/sum/min/max) add exactly; the reservoir absorbs the
     * other side's retained samples through the same algorithm-R
     * stream, so the result is deterministic for a fixed merge order.
     * Invalidates the cached sorted reservoir.
     */
    void merge(const Distribution &other);

    /** Retained reservoir samples (registry snapshots, tests). */
    const std::vector<std::uint64_t> &samples() const
    {
        return reservoir_;
    }

    /**
     * Forget all samples: empties the reservoir, invalidates the
     * cached sorted copy and restores the min/max sentinels, so a
     * reused instance is indistinguishable from a fresh one.
     */
    void reset();
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::size_t cap_;
    std::vector<std::uint64_t> reservoir_;
    mutable std::vector<std::uint64_t> sorted_;
    mutable bool sortedValid_ = false;
    Rng rng_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t(0);
    std::uint64_t max_ = 0;
};

/**
 * Fixed-bucket log-linear histogram for high-volume hot paths.
 *
 * Values below kSubBuckets are counted exactly; above that each
 * power-of-two decade is split into kSubBuckets linear sub-buckets, so
 * the relative quantization error of any percentile is bounded by
 * 1 / kSubBuckets (3.125%) — percentile() answers with the bucket
 * midpoint, clamped to the exact observed [min, max], which halves the
 * worst case again. record() is branch-light: an index computation
 * (count-leading-zeros plus shifts) and one increment. No allocation,
 * no RNG, no cache invalidation — suitable for per-I/O instrumentation
 * in the device and FTL models.
 */
class Histogram
{
  public:
    /** Linear sub-buckets per power-of-two decade. */
    static constexpr unsigned kSubBits = 5;
    static constexpr unsigned kSubBuckets = 1u << kSubBits;
    /** Documented relative error bound of percentile(). */
    static constexpr double kRelativeError = 1.0 / kSubBuckets;

    explicit Histogram(std::string name = "hist");

    /** Record one sample; O(1), allocation-free. */
    void record(std::uint64_t v);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /**
     * p-th percentile (p in [0, 100]) with relative error bounded by
     * kRelativeError. @return 0 when no samples were recorded.
     */
    std::uint64_t percentile(double p) const;

    /** Fold @p other into this histogram (exact: bucket-wise add). */
    void merge(const Histogram &other);

    /**
     * Zero every bucket and restore the min/max sentinels so a reused
     * instance is indistinguishable from a fresh one.
     */
    void reset();
    const std::string &name() const { return name_; }

    /** @name Bucket introspection (registry snapshots, exporters) @{ */

    /** Total number of buckets in the index space. */
    static constexpr unsigned bucketCount() { return kBuckets; }

    /** Occupancy of bucket @p index. */
    std::uint64_t
    bucketAt(unsigned index) const
    {
        return buckets_[index];
    }

    /** Representative (midpoint) value of bucket @p index. */
    static std::uint64_t
    bucketMid(unsigned index)
    {
        return bucketMidpoint(index);
    }

    /** @} */

  private:
    // Index space: [0, kSubBuckets) exact values, then one group of
    // kSubBuckets per leading-bit position above kSubBits. A uint64
    // value's top group is (63 - kSubBits) + 1, hence:
    static constexpr unsigned kGroups = 64 - kSubBits;
    static constexpr unsigned kBuckets = (kGroups + 1) * kSubBuckets;

    static unsigned bucketIndex(std::uint64_t v);
    static std::uint64_t bucketMidpoint(unsigned index);

    std::string name_;
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t(0);
    std::uint64_t max_ = 0;
};

} // namespace bssd::sim

#endif // BSSD_SIM_STATS_HH
