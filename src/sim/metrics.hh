/**
 * @file
 * Hierarchical metric registry (DESIGN.md section 9).
 *
 * Components own their Counters/Distributions/Histograms exactly as
 * before; a MetricRegistry attaches non-owning references to them
 * under dotted hierarchical paths ("ssd0.ftl.gc.pages_moved") so one
 * object can enumerate, snapshot and export every statistic of a rig.
 * Gauges - instantaneous values derived from component state (free
 * blocks, WC dirty lines, BA-buffer occupancy) - are registered as
 * callbacks and evaluated at snapshot/sample time.
 *
 * Snapshots are plain data, detached from the components: sweep
 * workers snapshot their own rigs and the coordinator merges the
 * snapshots in job order, which keeps the merged result deterministic
 * no matter which worker finished first (the same contract as
 * sim/sweep.hh).
 *
 * Registration of a duplicate path is a programming error and panics:
 * silent shadowing would corrupt merged reports.
 */

#ifndef BSSD_SIM_METRICS_HH
#define BSSD_SIM_METRICS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hh"

namespace bssd::sim
{

/**
 * An instantaneous sampled value backed by a callback into component
 * state. Evaluated lazily (at snapshot or sampler time), so
 * registering a gauge costs nothing on the simulation hot path.
 */
class Gauge
{
  public:
    using Fn = std::function<double()>;

    Gauge(std::string name, Fn fn)
        : name_(std::move(name)), fn_(std::move(fn))
    {}

    double value() const { return fn_ ? fn_() : 0.0; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    Fn fn_;
};

/** One metric's detached snapshot row. */
struct MetricValue
{
    enum class Kind : std::uint8_t { counter, gauge, dist, hist };

    Kind kind = Kind::counter;

    /** counter/gauge value (counters: exact integer in the double). */
    double value = 0.0;

    /** @name dist/hist summary @{ */
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    /** @} */

    /** dist: retained reservoir samples (percentiles after merge). */
    std::vector<std::uint64_t> samples;
    /** hist: sparse (bucketIndex, count) pairs, index-ascending. */
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

    double mean() const;

    /**
     * p-th percentile (p in [0, 100]) over the retained detail:
     * exact nearest-rank over `samples` for distributions, bucket
     * midpoints clamped to [min, max] for histograms. @return 0 for
     * counters/gauges or when empty.
     */
    std::uint64_t percentile(double p) const;
};

/**
 * A detached, mergeable copy of every registered metric, keyed by
 * path. std::map keeps the rows sorted, so iteration order - and any
 * serialized form - is deterministic.
 */
class MetricsSnapshot
{
  public:
    std::map<std::string, MetricValue> rows;

    const MetricValue *find(const std::string &path) const;

    /**
     * Fold @p other into this snapshot: counters and gauges add,
     * histograms add bucket-wise (exact), distribution summaries add
     * exactly while reservoirs concatenate up to the retained cap.
     * Paths present in only one side are kept as-is. Merging in a
     * fixed order (sweep job order) yields a deterministic result.
     * @throws SimPanic when the same path has different kinds.
     */
    void merge(const MetricsSnapshot &other);

    /**
     * Emit `{"path": {...}, ...}` with stable field order; counters
     * and gauges are scalar, dist/hist rows carry count/sum/min/max,
     * mean and p50/p99/p999.
     */
    void writeJson(std::ostream &os, int indent = 0) const;
};

/**
 * The per-rig metric registry. Holds non-owning references: every
 * registered component must outlive the registry (rigs register at
 * construction time and tear down together).
 */
class MetricRegistry
{
  public:
    /** @name Registration (duplicate paths panic) @{ */
    void addCounter(const std::string &path, const Counter &c);
    void addDistribution(const std::string &path, const Distribution &d);
    void addHistogram(const std::string &path, const Histogram &h);
    void addGauge(const std::string &path, Gauge::Fn fn);
    /** @} */

    bool contains(const std::string &path) const;
    std::size_t size() const { return entries_.size(); }

    /** All registered paths, sorted. */
    std::vector<std::string> paths() const;

    /** Registered gauge paths, sorted (the sampler's column set). */
    std::vector<std::string> gaugePaths() const;

    /** Evaluate one gauge. @throws SimPanic on unknown/non-gauge path. */
    double gaugeValue(const std::string &path) const;

    /** Detach a copy of every metric's current state. */
    MetricsSnapshot snapshot() const;

    /** snapshot().writeJson() convenience. */
    void writeJson(std::ostream &os, int indent = 0) const;

  private:
    struct Entry
    {
        MetricValue::Kind kind = MetricValue::Kind::counter;
        const Counter *counter = nullptr;
        const Distribution *dist = nullptr;
        const Histogram *hist = nullptr;
        Gauge::Fn gauge;
    };

    std::map<std::string, Entry> entries_;

    void insert(const std::string &path, Entry e);
};

} // namespace bssd::sim

#endif // BSSD_SIM_METRICS_HH
