/**
 * @file
 * Closed-loop client scheduling.
 *
 * Application-level experiments (Figs. 9 and 10) run N logical client
 * threads, each owning a virtual Clock. The driver always steps the
 * client whose clock is smallest, so operations interleave in global
 * time order and contention on shared FIFO resources resolves the same
 * way it would under a full event-driven host model.
 */

#ifndef BSSD_SIM_CLIENT_HH
#define BSSD_SIM_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace bssd::sim
{

/** A logical thread's virtual clock, threaded through call chains. */
class Clock
{
  public:
    Tick now() const { return now_; }

    /** Move forward by @p d ticks (CPU work, blocking waits, ...). */
    void advance(Tick d) { now_ += d; }

    /** Jump to an absolute time; ignores moves into the past. */
    void
    advanceTo(Tick t)
    {
        if (t > now_)
            now_ = t;
    }

    /** Rewind to time zero for a fresh run. */
    void reset() { now_ = 0; }

  private:
    Tick now_ = 0;
};

/**
 * Shape of an open-loop arrival process.
 *
 * Poisson is the memoryless baseline every queueing model starts
 * from; bursty is the heavy-tailed reality of fleet traffic (many
 * users waking at once behind a cache-miss storm or a timer tick):
 * burst *starts* arrive as a Poisson process with @ref meanGap, and
 * each burst then emits @ref burstSize arrivals @ref burstGap apart.
 * With burstSize == 1 the two kinds coincide.
 */
struct ArrivalSpec
{
    enum class Kind : std::uint8_t
    {
        poisson, ///< independent exponential gaps
        bursty   ///< Poisson burst starts, clustered arrivals inside
    };

    Kind kind = Kind::poisson;
    /** Mean gap between arrivals (poisson) or burst starts (bursty). */
    Tick meanGap = usOf(400);
    /** Arrivals per burst (bursty only; >= 1). */
    std::uint32_t burstSize = 8;
    /** Gap between arrivals inside one burst (bursty only; arrivals
     *  still advance by at least one tick each). */
    Tick burstGap = 0;
};

/**
 * Deterministic open-loop arrival process (Poisson or bursty).
 *
 * Closed-loop clients issue the next operation when the previous one
 * completes; an open-loop source issues on its own schedule regardless
 * of service times, which is what drives the event-queue side of a rig
 * (and the parallel engine's host domain). Arrival times depend only
 * on (spec, seed), never on service progress, so the generated
 * schedule is bit-identical across runs and thread counts.
 *
 * Monotonicity contract: next() strictly increases and saturates at
 * maxTick instead of wrapping — exponential draws can exceed 30x the
 * mean, so a huge meanGap must clamp rather than overflow the
 * double→Tick conversion (regression-tested in test_client.cc).
 */
class OpenLoopArrivals
{
  public:
    /**
     * Poisson process (the historical constructor).
     * @param meanGap mean inter-arrival gap in ticks (> 0)
     * @param seed    RNG stream seed
     */
    OpenLoopArrivals(Tick meanGap, std::uint64_t seed);

    /** Any ArrivalSpec shape. @pre spec.meanGap > 0, burstSize >= 1. */
    OpenLoopArrivals(const ArrivalSpec &spec, std::uint64_t seed);

    /** Absolute time of the next arrival (strictly increasing). */
    Tick next();

    /** Arrivals generated so far. */
    std::uint64_t generated() const { return generated_; }

  private:
    ArrivalSpec spec_;
    Rng rng_;
    Tick at_ = 0;
    /** Start time of the current burst (bursty kind). */
    Tick burstStart_ = 0;
    /** Arrivals already emitted from the current burst. */
    std::uint32_t inBurst_ = 0;
    std::uint64_t generated_ = 0;

    Tick expGap();
};

/**
 * Runs N closed-loop clients to a simulated-time horizon.
 *
 * Each client is a callable performing exactly one operation per
 * invocation, advancing the Clock it is handed by that operation's
 * latency.
 */
class ClosedLoopDriver
{
  public:
    /** One operation; advances the clock by the operation's latency. */
    using ClientFn = std::function<void(Clock &)>;

    /** Register a client. Returns its index. */
    std::size_t addClient(ClientFn fn);

    /**
     * Start every client clock at @p t (e.g., after a load phase has
     * advanced the device calendars) instead of zero.
     */
    void setStartTime(Tick t) { startAt_ = t; }

    /**
     * Run all clients until every clock passes @p horizon.
     *
     * @param horizon  end of measurement window (ticks, absolute)
     * @return number of whole operations completed within the horizon
     */
    std::uint64_t run(Tick horizon);

    /** Completed operations per simulated second over the last run(). */
    double throughputOpsPerSec() const;

    /** Per-operation latency distribution over the last run(). */
    const Distribution &latency() const { return latency_; }

    /** Number of registered clients. */
    std::size_t clients() const { return clients_.size(); }

  private:
    struct Client
    {
        ClientFn fn;
        Clock clock;
    };

    std::vector<Client> clients_;
    Distribution latency_{"op-latency-ns"};
    std::uint64_t completedOps_ = 0;
    Tick startAt_ = 0;
    Tick lastHorizon_ = 0;
};

} // namespace bssd::sim

#endif // BSSD_SIM_CLIENT_HH
