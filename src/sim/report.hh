/**
 * @file
 * Machine-readable run reports and the periodic gauge sampler
 * (DESIGN.md section 9).
 *
 * GaugeSampler turns the registry's gauges (GC backlog, free blocks,
 * WAF, BA-buffer occupancy, WC dirty lines, ...) into a time series on
 * the simulated clock. The simulation has no global scheduler to hang
 * a timer on - timing is straight-line - so the driving loop pumps
 * sample() with its current tick and the sampler records one row each
 * time the clock crosses the next due point. Same op stream, same
 * rows.
 *
 * RunReport is the end-of-run JSON document emitted by the bench rigs
 * and tools/crash_campaign: bench/config identity, the full metrics
 * snapshot, the per-phase latency breakdown from the tracer, and the
 * sampled gauge series when one was collected.
 */

#ifndef BSSD_SIM_REPORT_HH
#define BSSD_SIM_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace bssd::sim
{

/** Periodic sampler over a registry's gauges (simulated time). */
class GaugeSampler
{
  public:
    struct Row
    {
        Tick at = 0;
        std::vector<double> values;
    };

    /**
     * @param registry gauge source; must outlive the sampler. The
     *                 column set is fixed at construction.
     * @param period   simulated ticks between rows.
     */
    GaugeSampler(const MetricRegistry &registry, Tick period);

    /**
     * Advance the sampled clock to @p now: records one row the first
     * time @p now reaches or passes the next due tick. Cheap when not
     * due (one compare).
     */
    void sample(Tick now);

    const std::vector<std::string> &columns() const { return columns_; }
    const std::vector<Row> &rows() const { return rows_; }

    /** `{"period": ..., "columns": [...], "rows": [[at, v...], ...]}` */
    void writeJson(std::ostream &os, int indent = 0) const;

  private:
    const MetricRegistry &registry_;
    Tick period_;
    Tick nextDue_ = 0;
    std::vector<std::string> columns_;
    std::vector<Row> rows_;
};

/** End-of-run machine-readable report. */
struct RunReport
{
    /** Emitting binary ("bench_fig7_latency", "crash_campaign", ...). */
    std::string bench;
    /** Free-form configuration identity (preset, op mix, ...). */
    std::string config;
    std::uint64_t seed = 0;

    MetricsSnapshot metrics;
    std::vector<Tracer::PhaseStat> phases;
    /** Optional gauge time series; null when none was sampled. */
    const GaugeSampler *series = nullptr;

    /**
     * Emit the report as one JSON object with stable field order:
     * identity, "metrics" (path-sorted), "phases" (cat/name-sorted
     * rows with count/total/min/max/p50/p99 ticks), and "series".
     */
    void writeJson(std::ostream &os) const;
};

} // namespace bssd::sim

#endif // BSSD_SIM_REPORT_HH
