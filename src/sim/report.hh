/**
 * @file
 * Machine-readable run reports and the periodic gauge sampler
 * (DESIGN.md section 9).
 *
 * GaugeSampler turns the registry's gauges (GC backlog, free blocks,
 * WAF, BA-buffer occupancy, WC dirty lines, ...) into a time series on
 * the simulated clock. The simulation has no global scheduler to hang
 * a timer on - timing is straight-line - so the driving loop pumps
 * sample() with its current tick and the sampler records one row each
 * time the clock crosses the next due point. Same op stream, same
 * rows.
 *
 * RunReport is the end-of-run JSON document emitted by the bench rigs
 * and tools/crash_campaign: bench/config identity, the full metrics
 * snapshot, the per-phase latency breakdown from the tracer, and the
 * sampled gauge series when one was collected.
 */

#ifndef BSSD_SIM_REPORT_HH
#define BSSD_SIM_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace bssd::sim
{

/** Periodic sampler over a registry's gauges (simulated time). */
class GaugeSampler
{
  public:
    struct Row
    {
        Tick at = 0;
        std::vector<double> values;
    };

    /**
     * @param registry gauge source; must outlive the sampler. The
     *                 column set is fixed at construction.
     * @param period   simulated ticks between rows.
     */
    GaugeSampler(const MetricRegistry &registry, Tick period);

    /**
     * Advance the sampled clock to @p now: records one row the first
     * time @p now reaches or passes the next due tick. Cheap when not
     * due (one compare).
     */
    void sample(Tick now);

    const std::vector<std::string> &columns() const { return columns_; }
    const std::vector<Row> &rows() const { return rows_; }
    Tick period() const { return period_; }

    /** `{"period": ..., "columns": [...], "rows": [[at, v...], ...]}` */
    void writeJson(std::ostream &os, int indent = 0) const;

  private:
    const MetricRegistry &registry_;
    Tick period_;
    Tick nextDue_ = 0;
    std::vector<std::string> columns_;
    std::vector<Row> rows_;
};

/**
 * A detached, mergeable gauge time series: the union of one or more
 * GaugeSamplers. Used by multi-shard runs where each shard samples
 * its own registry — merge() is a COLUMN UNION joined on sample tick,
 * so a gauge path that exists in only one shard's registry (e.g. the
 * rebalance target's inbound-keys gauge) survives the merge instead
 * of being dropped; rows missing a column carry 0. Merging samplers
 * in a fixed order (host, then shard id order) keeps the table — and
 * its JSON — a pure function of the run.
 */
struct SeriesTable
{
    struct Row
    {
        Tick at = 0;
        std::vector<double> values;
    };

    /** Period of the first merged sampler (informational). */
    Tick period = 0;
    /** Union of merged column sets, in first-seen order. */
    std::vector<std::string> columns;
    /** Rows sorted by tick; values index-aligned with columns. */
    std::vector<Row> rows;

    /** Fold @p s into the table (column union, rows joined on tick). */
    void merge(const GaugeSampler &s);

    /** Same shape as GaugeSampler::writeJson. */
    void writeJson(std::ostream &os, int indent = 0) const;
};

/** End-of-run machine-readable report. */
struct RunReport
{
    /** Emitting binary ("bench_fig7_latency", "crash_campaign", ...). */
    std::string bench;
    /** Free-form configuration identity (preset, op mix, ...). */
    std::string config;
    std::uint64_t seed = 0;

    MetricsSnapshot metrics;
    std::vector<Tracer::PhaseStat> phases;
    /** Optional gauge time series; null when none was sampled. */
    const GaugeSampler *series = nullptr;
    /** Optional merged multi-sampler series (cluster runs); emitted
     *  as "series" when `series` itself is null. */
    const SeriesTable *mergedSeries = nullptr;

    /**
     * Emit the report as one JSON object with stable field order:
     * identity, "metrics" (path-sorted), "phases" (cat/name-sorted
     * rows with count/total/min/max/p50/p99 ticks), and "series".
     */
    void writeJson(std::ostream &os) const;
};

} // namespace bssd::sim

#endif // BSSD_SIM_REPORT_HH
