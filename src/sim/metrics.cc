#include "sim/metrics.hh"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "sim/logging.hh"

namespace bssd::sim
{

double
MetricValue::mean() const
{
    return count == 0
        ? 0.0
        : static_cast<double>(sum) / static_cast<double>(count);
}

std::uint64_t
MetricValue::percentile(double p) const
{
    if (kind == Kind::dist) {
        if (samples.empty())
            return 0;
        if (p <= 0.0)
            return min;
        if (p >= 100.0)
            return max;
        std::vector<std::uint64_t> sorted(samples);
        std::sort(sorted.begin(), sorted.end());
        double rank =
            p / 100.0 * static_cast<double>(sorted.size() - 1);
        auto idx = static_cast<std::size_t>(std::llround(rank));
        return sorted[std::min(idx, sorted.size() - 1)];
    }
    if (kind == Kind::hist) {
        if (count == 0)
            return 0;
        if (p <= 0.0)
            return min;
        if (p >= 100.0)
            return max;
        const auto target = static_cast<std::uint64_t>(
            std::llround(p / 100.0 * static_cast<double>(count - 1)));
        std::uint64_t cum = 0;
        for (const auto &[index, n] : buckets) {
            cum += n;
            if (cum > target) {
                return std::clamp(Histogram::bucketMid(index), min,
                                  max);
            }
        }
        return max;
    }
    return 0;
}

const MetricValue *
MetricsSnapshot::find(const std::string &path) const
{
    auto it = rows.find(path);
    return it == rows.end() ? nullptr : &it->second;
}

namespace
{

void
mergeValue(MetricValue &into, const MetricValue &from)
{
    if (into.kind != from.kind)
        panic("metric snapshot merge: kind mismatch");
    switch (into.kind) {
      case MetricValue::Kind::counter:
      case MetricValue::Kind::gauge:
        into.value += from.value;
        return;
      case MetricValue::Kind::dist: {
        const bool was_empty = into.count == 0;
        into.count += from.count;
        into.sum += from.sum;
        if (from.count > 0) {
            into.min = was_empty ? from.min
                                 : std::min(into.min, from.min);
            into.max = std::max(into.max, from.max);
        }
        // Reservoirs concatenate up to the default retained cap:
        // order-dependent but deterministic for a fixed merge order,
        // which is all the sweep coordinator needs.
        constexpr std::size_t cap = 16384;
        for (std::uint64_t s : from.samples) {
            if (into.samples.size() >= cap)
                break;
            into.samples.push_back(s);
        }
        return;
      }
      case MetricValue::Kind::hist: {
        const bool was_empty = into.count == 0;
        into.count += from.count;
        into.sum += from.sum;
        if (from.count > 0) {
            into.min = was_empty ? from.min
                                 : std::min(into.min, from.min);
            into.max = std::max(into.max, from.max);
        }
        // Sparse bucket-wise add: both sides are index-ascending.
        std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
        out.reserve(into.buckets.size() + from.buckets.size());
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < into.buckets.size() || j < from.buckets.size()) {
            if (j >= from.buckets.size() ||
                (i < into.buckets.size() &&
                 into.buckets[i].first < from.buckets[j].first)) {
                out.push_back(into.buckets[i++]);
            } else if (i >= into.buckets.size() ||
                       from.buckets[j].first < into.buckets[i].first) {
                out.push_back(from.buckets[j++]);
            } else {
                out.emplace_back(into.buckets[i].first,
                                 into.buckets[i].second +
                                     from.buckets[j].second);
                ++i;
                ++j;
            }
        }
        into.buckets = std::move(out);
        return;
      }
    }
}

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default: os << c;
        }
    }
    os << '"';
}

} // namespace

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    for (const auto &[path, value] : other.rows) {
        auto it = rows.find(path);
        if (it == rows.end())
            rows.emplace(path, value);
        else
            mergeValue(it->second, value);
    }
}

void
MetricsSnapshot::writeJson(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    os << "{\n";
    std::size_t i = 0;
    for (const auto &[path, v] : rows) {
        os << pad << "  ";
        jsonEscape(os, path);
        os << ": ";
        switch (v.kind) {
          case MetricValue::Kind::counter:
            os << "{\"type\": \"counter\", \"value\": "
               << static_cast<std::uint64_t>(v.value) << "}";
            break;
          case MetricValue::Kind::gauge:
            os << "{\"type\": \"gauge\", \"value\": " << v.value << "}";
            break;
          case MetricValue::Kind::dist:
          case MetricValue::Kind::hist:
            os << "{\"type\": \""
               << (v.kind == MetricValue::Kind::dist ? "dist" : "hist")
               << "\", \"count\": " << v.count << ", \"sum\": " << v.sum
               << ", \"min\": " << v.min << ", \"max\": " << v.max
               << ", \"mean\": " << v.mean()
               << ", \"p50\": " << v.percentile(50)
               << ", \"p99\": " << v.percentile(99)
               << ", \"p999\": " << v.percentile(99.9) << "}";
            break;
        }
        os << (++i < rows.size() ? ",\n" : "\n");
    }
    os << pad << "}";
}

void
MetricRegistry::insert(const std::string &path, Entry e)
{
    if (path.empty())
        panic("metric registration with an empty path");
    auto [it, inserted] = entries_.emplace(path, std::move(e));
    if (!inserted)
        panic("duplicate metric registration: ", path);
}

void
MetricRegistry::addCounter(const std::string &path, const Counter &c)
{
    Entry e;
    e.kind = MetricValue::Kind::counter;
    e.counter = &c;
    insert(path, std::move(e));
}

void
MetricRegistry::addDistribution(const std::string &path,
                                const Distribution &d)
{
    Entry e;
    e.kind = MetricValue::Kind::dist;
    e.dist = &d;
    insert(path, std::move(e));
}

void
MetricRegistry::addHistogram(const std::string &path, const Histogram &h)
{
    Entry e;
    e.kind = MetricValue::Kind::hist;
    e.hist = &h;
    insert(path, std::move(e));
}

void
MetricRegistry::addGauge(const std::string &path, Gauge::Fn fn)
{
    Entry e;
    e.kind = MetricValue::Kind::gauge;
    e.gauge = std::move(fn);
    insert(path, std::move(e));
}

bool
MetricRegistry::contains(const std::string &path) const
{
    return entries_.find(path) != entries_.end();
}

std::vector<std::string>
MetricRegistry::paths() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[path, e] : entries_)
        out.push_back(path);
    return out;
}

std::vector<std::string>
MetricRegistry::gaugePaths() const
{
    std::vector<std::string> out;
    for (const auto &[path, e] : entries_)
        if (e.kind == MetricValue::Kind::gauge)
            out.push_back(path);
    return out;
}

double
MetricRegistry::gaugeValue(const std::string &path) const
{
    auto it = entries_.find(path);
    if (it == entries_.end() ||
        it->second.kind != MetricValue::Kind::gauge) {
        panic("gaugeValue on unknown or non-gauge path: ", path);
    }
    return it->second.gauge ? it->second.gauge() : 0.0;
}

MetricsSnapshot
MetricRegistry::snapshot() const
{
    MetricsSnapshot snap;
    for (const auto &[path, e] : entries_) {
        MetricValue v;
        v.kind = e.kind;
        switch (e.kind) {
          case MetricValue::Kind::counter:
            v.value = static_cast<double>(e.counter->value());
            break;
          case MetricValue::Kind::gauge:
            v.value = e.gauge ? e.gauge() : 0.0;
            break;
          case MetricValue::Kind::dist:
            v.count = e.dist->count();
            v.sum = e.dist->sum();
            v.min = e.dist->min();
            v.max = e.dist->max();
            v.samples = e.dist->samples();
            break;
          case MetricValue::Kind::hist:
            v.count = e.hist->count();
            v.sum = e.hist->sum();
            v.min = e.hist->min();
            v.max = e.hist->max();
            for (std::uint32_t i = 0; i < Histogram::bucketCount();
                 ++i) {
                if (std::uint64_t n = e.hist->bucketAt(i))
                    v.buckets.emplace_back(i, n);
            }
            break;
        }
        snap.rows.emplace(path, std::move(v));
    }
    return snap;
}

void
MetricRegistry::writeJson(std::ostream &os, int indent) const
{
    snapshot().writeJson(os, indent);
}

} // namespace bssd::sim
