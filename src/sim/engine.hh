/**
 * @file
 * Conservative parallel discrete-event engine over sim::Domain.
 *
 * The engine runs registered domains in barrier-synchronized rounds
 * (bounded-lag / windowed conservative PDES, no null messages):
 *
 *  1. deliver every buffered cross-domain message, globally sorted by
 *     (delivery tick, sender id, sender sequence);
 *  2. read each domain's next event time, then bound each domain's
 *     earliest possible SEND time
 *         eot(s) = min(nextEvent(s), globalMin + minInLookahead(s))
 *     — the second term covers feedback: even an idle domain can be
 *     woken by a message, but no causal chain starts before the
 *     globally earliest event and reaching s costs at least its
 *     cheapest inbound lookahead;
 *  3. give each domain a safe window
 *         W(d) = min over channels s→d of eot(s) + lookahead(s,d)
 *     capped at the run horizon;
 *  4. execute all domains' windows concurrently on a persistent worker
 *     pool (events strictly before W(d) fire); outgoing posts are
 *     buffered in per-domain outboxes;
 *  5. barrier, then repeat from 1.
 *
 * Safety: any message s ever sends from here on has send time
 * t >= eot(s) — either s fires a currently queued event (t >=
 * nextEvent(s)) or it was first woken by a chain of messages rooted at
 * some currently queued event (t >= globalMin + minInLookahead(s)) —
 * so its delivery tick is >= eot(s) + lookahead(s,d) >= W(d); no event
 * a domain fired inside its window can be invalidated by a message it
 * has not seen yet. Progress: channels require positive lookahead, so
 * eot(s) >= globalMin for every s and the domain holding the globally
 * earliest event always has W(d) > globalMin and fires it — every
 * round fires at least one event or the run is complete.
 *
 * Determinism: with threads == 1 the engine executes the identical
 * window schedule inline in domain-id order, and message delivery
 * order is a pure function of (tick, sender id, sender sequence) — so
 * parallel runs are bit-identical to serial ones, including trace and
 * metrics output. See DESIGN.md section 12.
 */

#ifndef BSSD_SIM_ENGINE_HH
#define BSSD_SIM_ENGINE_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/domain.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace bssd::sim
{

class MetricRegistry;

/**
 * Runs a set of domains to a horizon, serially or on worker threads,
 * with bit-identical results either way.
 */
class ParallelEngine
{
  public:
    /** @param threads worker count; <= 1 means serial execution. */
    explicit ParallelEngine(unsigned threads = 1);

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    ~ParallelEngine();

    /**
     * Register @p d with this engine. Ids are assigned in registration
     * order; register domains in a fixed order for reproducible runs.
     * @pre d is not attached to any engine.
     */
    std::uint32_t add(Domain &d);

    /**
     * Declare that @p src may post to @p dst with delivery at least
     * @p lookahead ticks after the send. The lookahead is the channel
     * contract: larger values widen every window (more parallelism),
     * but posts violating them panic. Across the host↔device boundary
     * the PCIe link minimum latency is the natural choice
     * (pcie::PcieConfig::minPostedLatency()).
     * @pre both registered here, src != dst, lookahead > 0.
     */
    void connect(Domain &src, Domain &dst, Tick lookahead);

    /** Channel lookahead src→dst, or maxTick when not connected. */
    Tick lookahead(std::uint32_t src, std::uint32_t dst) const;

    /**
     * Run every domain's events with tick <= @p until, then advance
     * all domain clocks to exactly @p until.
     * @return events fired by this call.
     */
    std::uint64_t run(Tick until);

    /** @name Introspection @{ */
    unsigned threads() const { return threads_; }
    std::size_t domainCount() const { return domains_.size(); }
    /** Horizon reached by the last run() call. */
    Tick now() const { return now_; }
    /** Barrier rounds executed over this engine's lifetime. */
    std::uint64_t rounds() const { return rounds_; }
    /** Cross-domain messages delivered over this engine's lifetime. */
    std::uint64_t messagesDelivered() const { return delivered_; }
    /** Events fired through run() over this engine's lifetime. */
    std::uint64_t eventsFired() const { return fired_; }
    /** @} */

    /** @name Self-telemetry (DESIGN.md section 14)
     *
     * All of it is computed on the main thread from the per-round
     * window schedule, which is identical at every thread count — the
     * numbers measure the SCHEDULE's parallelism (how much work each
     * barrier round makes available per domain and which channel
     * bounds it), not wall time, so they are deterministic and
     * byte-identical across 1/2/8 threads like everything else.
     * @{ */

    /** Events fired by one domain over this engine's lifetime. */
    std::uint64_t domainEventsFired(std::uint32_t d) const;

    /**
     * Barrier stall attributed to one domain: the per-round gap
     * between its window end and the round's widest window, summed in
     * ticks. A domain with large stall is repeatedly ready early and
     * waits at the barrier — the scaling loss the telemetry makes
     * measurable.
     */
    std::uint64_t stallTicks(std::uint32_t d) const;

    /** Rounds in which @p d's window was bounded by the run horizon
     *  rather than by an inbound channel. */
    std::uint64_t horizonBoundRounds(std::uint32_t d) const;

    /** Rounds in which @p d's window was bounded by the channel from
     *  @p src (lookahead-bound attribution). */
    std::uint64_t channelBoundRounds(std::uint32_t d,
                                     std::uint32_t src) const;

    /** Per-round window width (W(d) − globalMin) over all domains. */
    const Histogram &windowWidth() const { return windowWidth_; }

    /**
     * Register the engine's telemetry under @p prefix ("engine"):
     * scalar gauges for rounds/messages/events, the window-width
     * histogram, and per-domain events/stall/bound attribution under
     * `<prefix>.<domain-name>.` (names sanitized to metric-path
     * grammar). The registry must not outlive the engine.
     */
    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const;

    /**
     * Record one span per barrier round ("engine"/"round", covering
     * [globalMin, widest window)) into @p t. Opt-in: rounds are many,
     * so benches enable it only when asked. Pass nullptr to stop.
     * @p t must be a tracer no domain records into (the engine writes
     * between rounds, concurrently with nothing).
     */
    void traceRounds(Tracer *t) { roundTracer_ = t; }

    /** @} */

  private:
    friend class Domain;

    /** An outbox message tagged with its sender for global ordering. */
    struct Routed
    {
        Tick when;
        std::uint32_t sender;
        std::uint64_t seq;
        std::uint32_t target;
        EventQueue::Callback cb;
    };

    /** when + lookahead without wrapping past maxTick. */
    static Tick satAdd(Tick a, Tick b)
    {
        return a > maxTick - b ? maxTick : a + b;
    }

    void deliverOutboxes();
    Tick windowFor(std::size_t d, Tick until) const;
    void executeDomain(std::size_t d);
    void runRound();
    void startWorkers();
    void workerLoop(unsigned self);

    unsigned threads_;
    std::vector<Domain *> domains_;
    /** look_[src][dst]; maxTick = no channel. */
    std::vector<std::vector<Tick>> look_;
    /** Cheapest inbound lookahead per domain; maxTick = no inbound. */
    std::vector<Tick> minInLook_;

    // Per-round scratch, indexed by domain id. Written by the main
    // thread between rounds; windows_ is read and perFired_/errors_
    // written by the executor that owns the domain during a round (the
    // barrier mutex orders those accesses).
    std::vector<Tick> next_;
    std::vector<Tick> windows_;
    std::vector<std::uint64_t> perFired_;
    std::vector<std::exception_ptr> errors_;
    std::vector<Routed> mailbag_;

    Tick now_ = 0;
    std::uint64_t rounds_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t fired_ = 0;

    // Self-telemetry, accumulated on the main thread between rounds
    // (see the Introspection section above for semantics).
    std::vector<std::uint64_t> domFired_;
    std::vector<std::uint64_t> stallTicks_;
    /** boundBy_[d][src] = rounds d's window was set by channel src→d. */
    std::vector<std::vector<std::uint64_t>> boundBy_;
    std::vector<std::uint64_t> boundByHorizon_;
    /** windowFor scratch: bounding source of the last computed window
     *  (domain id, or kNoBound for the horizon cap). */
    mutable std::uint32_t windowBoundBy_ = 0;
    static constexpr std::uint32_t kNoBound = ~std::uint32_t(0);
    Histogram windowWidth_{"window-width-ticks"};
    Tracer *roundTracer_ = nullptr;

    // Worker pool (started lazily on the first threaded round).
    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable roundStart_;
    std::condition_variable roundDone_;
    std::uint64_t roundGen_ = 0;
    unsigned busy_ = 0;
    bool stop_ = false;
};

} // namespace bssd::sim

#endif // BSSD_SIM_ENGINE_HH
