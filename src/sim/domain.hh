/**
 * @file
 * Simulation domain: one independently-clocked partition of a run.
 *
 * A Domain owns a slab-pooled EventQueue and is the unit the parallel
 * engine schedules onto worker threads — one domain per device/rig,
 * with the host as its own domain. Everything inside a domain (its
 * queue, its rig's calendars, counters and tracer) is touched only by
 * the thread currently executing that domain's window, so no state
 * needs locking.
 *
 * Cross-domain communication goes through post(): an explicit mailbox
 * send that is buffered in the sender's outbox and delivered by the
 * engine at the next barrier, globally ordered by (delivery tick,
 * sender id, sender sequence). Because the serial engine delivers the
 * same messages in the same order, parallel execution is bit-identical
 * to serial. Scheduling directly onto another domain's queue would
 * bypass that ordering (and race under threads); bssd-lint's
 * det-cross-domain-schedule rule rejects it.
 */

#ifndef BSSD_SIM_DOMAIN_HH
#define BSSD_SIM_DOMAIN_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace bssd::sim
{

class ParallelEngine;

/**
 * One partition of a simulation: a named event queue plus an outbox of
 * cross-domain messages. Standalone domains (not attached to an
 * engine) behave as plain queue owners; post() requires attachment.
 */
class Domain
{
  public:
    /** Id of a domain not (yet) attached to an engine. */
    static constexpr std::uint32_t kNoId = ~std::uint32_t(0);

    explicit Domain(std::string name = "domain")
        : name_(std::move(name))
    {}

    Domain(const Domain &) = delete;
    Domain &operator=(const Domain &) = delete;

    const std::string &name() const { return name_; }

    /** This domain's private event queue. */
    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }

    /** Current simulated time of this domain. */
    Tick now() const { return queue_.now(); }

    /** Engine this domain is attached to (nullptr if standalone). */
    ParallelEngine *engine() const { return engine_; }

    /** Registration index within the engine (kNoId if standalone). */
    std::uint32_t id() const { return id_; }

    /**
     * Send @p cb to run in @p target's domain at absolute time
     * @p when. The message is buffered in this domain's outbox and
     * scheduled into the target at the engine's next barrier;
     * same-barrier messages are delivered in (when, sender id, sender
     * sequence) order, so delivery is deterministic for any thread
     * count.
     *
     * @pre both domains are attached to the same engine, a channel
     *      this→target exists, and when >= now() + channel lookahead
     *      (the conservative-synchronization contract; violating it
     *      could let the target run past @p when before the message
     *      lands). Violations panic.
     */
    void post(Domain &target, Tick when, EventQueue::Callback cb);

    /**
     * post() carrying a request identity: when the message runs in
     * @p target, the target's tracer (setTracer) has @p ctx pushed, so
     * every span the callback records stitches into the sending
     * request's tree. With tracing compiled out or an empty context
     * this is exactly the plain post().
     */
    void post(Domain &target, Tick when, TraceContext ctx,
              EventQueue::Callback cb);

    /**
     * Tracer receiving context pushes for messages posted INTO this
     * domain (owned by the rig living here; may be null). Only read
     * by the thread executing this domain's window.
     */
    void setTracer(Tracer *t) { tracer_ = t; }
    Tracer *tracer() const { return tracer_; }

    /** Cross-domain messages sent over this domain's lifetime. */
    std::uint64_t messagesSent() const { return nextSeq_ - 1; }

    /**
     * @name Ownership sanitizer (BSSD_DOMAIN_CHECK builds)
     *
     * The runtime twin of bssd-lint's own-* rules (DESIGN.md section
     * 16). A rig adopts the allocations its domain owns at
     * construction; BSSD_OWN_GUARD() sites on hot mutation paths then
     * panic when a thread executing another domain's window touches
     * an adopted span — the race the lint rules catch syntactically,
     * caught dynamically through any level of indirection. Release
     * builds compile all of it to nothing.
     * @{
     */
#ifdef BSSD_DOMAIN_CHECK
    /** Register [obj, obj+bytes) as state owned by this domain.
     *  @p what names the span in violation panics ("ssd.flash").
     *  Nested spans are allowed (an adopted object inside an adopted
     *  object); the innermost covering span wins a lookup. */
    void adopt(const void *obj, std::size_t bytes, const char *what);

    /** Unregister a span before its memory is reused (dtors). */
    void release(const void *obj);

    /** Domain whose window the calling thread is executing, or
     *  nullptr outside engine execution (setup, teardown, tests). */
    static Domain *current();
#else
    void adopt(const void *, std::size_t, const char *) {}
    void release(const void *) {}
    static Domain *current() { return nullptr; }
#endif
    /** @} */

  private:
    friend class ParallelEngine;

    /** One buffered cross-domain send. */
    struct Message
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t target;
        EventQueue::Callback cb;
    };

    std::string name_;
    EventQueue queue_;
    ParallelEngine *engine_ = nullptr;
    Tracer *tracer_ = nullptr;
    std::uint32_t id_ = kNoId;
    std::uint64_t nextSeq_ = 1;
    std::vector<Message> outbox_;
};

#ifdef BSSD_DOMAIN_CHECK
namespace detail
{
/**
 * Implementation of BSSD_OWN_GUARD: panics (SimPanic) when the calling
 * thread is executing some domain's window and @p obj lies inside a
 * span adopted by a DIFFERENT domain of the same engine. Passes when
 * no window is executing, the span is unregistered, or its owner never
 * joined an engine (e.g. the replicated-WAL follower rig, driven by
 * direct calls from the primary's domain by design).
 */
void ownGuard(const void *obj);
} // namespace detail
#endif

} // namespace bssd::sim

/**
 * Assert that the calling thread may mutate @p obj under the
 * domain-ownership discipline. Place at the top of a component's
 * externally callable mutation paths; compiles to nothing unless the
 * build defines BSSD_DOMAIN_CHECK (CMake -DBSSD_DOMAIN_CHECK=ON).
 */
#ifdef BSSD_DOMAIN_CHECK
#define BSSD_OWN_GUARD(obj) ::bssd::sim::detail::ownGuard(obj)
#else
#define BSSD_OWN_GUARD(obj) ((void)0)
#endif

#endif // BSSD_SIM_DOMAIN_HH
