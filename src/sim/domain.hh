/**
 * @file
 * Simulation domain: one independently-clocked partition of a run.
 *
 * A Domain owns a slab-pooled EventQueue and is the unit the parallel
 * engine schedules onto worker threads — one domain per device/rig,
 * with the host as its own domain. Everything inside a domain (its
 * queue, its rig's calendars, counters and tracer) is touched only by
 * the thread currently executing that domain's window, so no state
 * needs locking.
 *
 * Cross-domain communication goes through post(): an explicit mailbox
 * send that is buffered in the sender's outbox and delivered by the
 * engine at the next barrier, globally ordered by (delivery tick,
 * sender id, sender sequence). Because the serial engine delivers the
 * same messages in the same order, parallel execution is bit-identical
 * to serial. Scheduling directly onto another domain's queue would
 * bypass that ordering (and race under threads); bssd-lint's
 * det-cross-domain-schedule rule rejects it.
 */

#ifndef BSSD_SIM_DOMAIN_HH
#define BSSD_SIM_DOMAIN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace bssd::sim
{

class ParallelEngine;

/**
 * One partition of a simulation: a named event queue plus an outbox of
 * cross-domain messages. Standalone domains (not attached to an
 * engine) behave as plain queue owners; post() requires attachment.
 */
class Domain
{
  public:
    /** Id of a domain not (yet) attached to an engine. */
    static constexpr std::uint32_t kNoId = ~std::uint32_t(0);

    explicit Domain(std::string name = "domain")
        : name_(std::move(name))
    {}

    Domain(const Domain &) = delete;
    Domain &operator=(const Domain &) = delete;

    const std::string &name() const { return name_; }

    /** This domain's private event queue. */
    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }

    /** Current simulated time of this domain. */
    Tick now() const { return queue_.now(); }

    /** Engine this domain is attached to (nullptr if standalone). */
    ParallelEngine *engine() const { return engine_; }

    /** Registration index within the engine (kNoId if standalone). */
    std::uint32_t id() const { return id_; }

    /**
     * Send @p cb to run in @p target's domain at absolute time
     * @p when. The message is buffered in this domain's outbox and
     * scheduled into the target at the engine's next barrier;
     * same-barrier messages are delivered in (when, sender id, sender
     * sequence) order, so delivery is deterministic for any thread
     * count.
     *
     * @pre both domains are attached to the same engine, a channel
     *      this→target exists, and when >= now() + channel lookahead
     *      (the conservative-synchronization contract; violating it
     *      could let the target run past @p when before the message
     *      lands). Violations panic.
     */
    void post(Domain &target, Tick when, EventQueue::Callback cb);

    /**
     * post() carrying a request identity: when the message runs in
     * @p target, the target's tracer (setTracer) has @p ctx pushed, so
     * every span the callback records stitches into the sending
     * request's tree. With tracing compiled out or an empty context
     * this is exactly the plain post().
     */
    void post(Domain &target, Tick when, TraceContext ctx,
              EventQueue::Callback cb);

    /**
     * Tracer receiving context pushes for messages posted INTO this
     * domain (owned by the rig living here; may be null). Only read
     * by the thread executing this domain's window.
     */
    void setTracer(Tracer *t) { tracer_ = t; }
    Tracer *tracer() const { return tracer_; }

    /** Cross-domain messages sent over this domain's lifetime. */
    std::uint64_t messagesSent() const { return nextSeq_ - 1; }

  private:
    friend class ParallelEngine;

    /** One buffered cross-domain send. */
    struct Message
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t target;
        EventQueue::Callback cb;
    };

    std::string name_;
    EventQueue queue_;
    ParallelEngine *engine_ = nullptr;
    Tracer *tracer_ = nullptr;
    std::uint32_t id_ = kNoId;
    std::uint64_t nextSeq_ = 1;
    std::vector<Message> outbox_;
};

} // namespace bssd::sim

#endif // BSSD_SIM_DOMAIN_HH
