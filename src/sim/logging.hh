/**
 * @file
 * Status and error reporting, following the gem5 fatal/panic distinction.
 *
 * panic()  - a simulator bug: something that must never happen regardless
 *            of user input. Throws SimPanic (tests can catch it); the
 *            top-level main() converts it into abort().
 * fatal()  - a user error (bad configuration, invalid arguments). Throws
 *            SimFatal, which main() converts into exit(1).
 * warn()/inform() - non-fatal status messages on stderr/stdout.
 */

#ifndef BSSD_SIM_LOGGING_HH
#define BSSD_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace bssd::sim
{

/** Exception thrown by panic(): an internal simulator bug. */
class SimPanic : public std::logic_error
{
  public:
    explicit SimPanic(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal(): an unrecoverable user/config error. */
class SimFatal : public std::runtime_error
{
  public:
    explicit SimFatal(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

/** Stream a parameter pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Report an internal invariant violation and abort the simulation.
 * Use only for conditions that indicate a bug in the simulator itself.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw SimPanic("panic: " + detail::concat(std::forward<Args>(args)...));
}

/**
 * Report an unrecoverable error caused by the user (bad configuration,
 * invalid API usage from an application's perspective) and stop.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw SimFatal("fatal: " + detail::concat(std::forward<Args>(args)...));
}

/** Print a warning about questionable but survivable behaviour. */
void warnStr(const std::string &msg);
/** Print an informational status message. */
void informStr(const std::string &msg);
/** Suppress or re-enable inform()/warn() output (quiet test runs). */
void setLogQuiet(bool quiet);

/** Variadic convenience wrapper over warnStr(). */
template <typename... Args>
void
warn(Args &&...args)
{
    warnStr(detail::concat(std::forward<Args>(args)...));
}

/** Variadic convenience wrapper over informStr(). */
template <typename... Args>
void
inform(Args &&...args)
{
    informStr(detail::concat(std::forward<Args>(args)...));
}

} // namespace bssd::sim

#endif // BSSD_SIM_LOGGING_HH
