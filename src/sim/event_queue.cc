#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bssd::sim
{

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead_ != kNilSlot) {
        std::uint32_t slot = freeHead_;
        freeHead_ = slots_[slot].nextFree;
        return slot;
    }
    if (slots_.size() >= kNilSlot)
        panic("event slab exhausted");
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    Slot &s = slots_[slot];
    s.cb.reset(); // release captured state eagerly
    ++s.gen;      // odd -> even: free; invalidates the id + heap entry
    s.nextFree = freeHead_;
    s.inBatch = false; // a reused slot starts with clean batch state
    freeHead_ = slot;
    --live_;
}

EventQueue::EventId
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        panic("event scheduled in the past: ", when, " < ", now_);
    std::uint32_t slot = allocSlot();
    Slot &s = slots_[slot];
    s.cb = std::move(cb);
    ++s.gen; // even -> odd: occupied
    heap_.push_back(HeapEntry{when, nextSeq_++, slot, s.gen});
    std::push_heap(heap_.begin(), heap_.end(), LaterFirst{});
    ++live_;
    return makeId(slot, s.gen);
}

EventQueue::EventId
EventQueue::scheduleIn(Tick delay, Callback cb)
{
    return schedule(now_ + delay, std::move(cb));
}

bool
EventQueue::deschedule(EventId id)
{
    const auto slot = static_cast<std::uint32_t>(id >> 32);
    const auto gen = static_cast<std::uint32_t>(id);
    if (slot >= slots_.size() || (gen & 1u) == 0 ||
        slots_[slot].gen != gen) {
        return false; // already fired, already cancelled, or bogus
    }
    // A slot in runWindow's drained batch has no heap entry left to go
    // stale; releasing it is enough (the fire loop's generation check
    // skips it).
    const bool inBatch = slots_[slot].inBatch;
    releaseSlot(slot);
    if (!inBatch) {
        ++stale_;
        maybeCompact();
    }
    return true;
}

bool
EventQueue::pruneTop()
{
    while (!heap_.empty()) {
        const HeapEntry &e = heap_.front();
        if (slots_[e.slot].gen == e.gen)
            return true;
        std::pop_heap(heap_.begin(), heap_.end(), LaterFirst{});
        heap_.pop_back();
        --stale_;
    }
    return false;
}

EventQueue::HeapEntry
EventQueue::popTop()
{
    HeapEntry e = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), LaterFirst{});
    heap_.pop_back();
    return e;
}

void
EventQueue::maybeCompact()
{
    // Heavy schedule/cancel churn would otherwise grow the heap without
    // bound; once cancelled entries dominate, filter them in one pass.
    if (stale_ < 1024 || stale_ * 2 < heap_.size())
        return;
    std::erase_if(heap_, [this](const HeapEntry &e) {
        return slots_[e.slot].gen != e.gen;
    });
    std::make_heap(heap_.begin(), heap_.end(), LaterFirst{});
    stale_ = 0;
}

std::size_t
EventQueue::run(std::size_t limit)
{
    std::size_t fired = 0;
    while (fired < limit && pruneTop()) {
        HeapEntry e = popTop();
        now_ = e.when;
        // Move the callback out and free the slot before invoking, so
        // the callback can freely schedule/deschedule (including its
        // own, now stale, id).
        Callback cb = std::move(slots_[e.slot].cb);
        releaseSlot(e.slot);
        ++fired;
        ++fired_;
        cb();
    }
    return fired;
}

std::size_t
EventQueue::runUntil(Tick when)
{
    std::size_t fired = 0;
    while (pruneTop() && heap_.front().when <= when) {
        HeapEntry e = popTop();
        now_ = e.when;
        Callback cb = std::move(slots_[e.slot].cb);
        releaseSlot(e.slot);
        ++fired;
        ++fired_;
        cb();
    }
    advanceTo(when);
    return fired;
}

Tick
EventQueue::nextEventTime()
{
    return pruneTop() ? heap_.front().when : maxTick;
}

std::size_t
EventQueue::runWindow(Tick limit)
{
    std::size_t fired = 0;
    while (pruneTop() && heap_.front().when < limit) {
        // Drain the run of live entries sharing the earliest tick into
        // the SoA batch. popTop() only re-heapifies; liveness is
        // checked here so stale entries inside the run are dropped in
        // the same pass.
        const Tick when = heap_.front().when;
        batchSlots_.clear();
        batchGens_.clear();
        do {
            HeapEntry e = popTop();
            if (slots_[e.slot].gen != e.gen) {
                --stale_;
                continue;
            }
            slots_[e.slot].inBatch = true;
            batchSlots_.push_back(e.slot);
            batchGens_.push_back(e.gen);
        } while (!heap_.empty() && heap_.front().when == when);
        now_ = when;
        for (std::size_t i = 0; i < batchSlots_.size(); ++i) {
            Slot &s = slots_[batchSlots_[i]];
            // A callback earlier in the batch may have descheduled
            // this one (generation moved on) — skip it.
            if (s.gen != batchGens_[i])
                continue;
            Callback cb = std::move(s.cb);
            releaseSlot(batchSlots_[i]);
            ++fired;
            ++fired_;
            cb();
        }
    }
    return fired;
}

void
EventQueue::advanceTo(Tick when)
{
    if (when < now_)
        panic("EventQueue::advanceTo moving backwards");
    now_ = when;
}

} // namespace bssd::sim
