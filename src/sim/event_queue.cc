#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace bssd::sim
{

EventQueue::EventId
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        panic("event scheduled in the past: ", when, " < ", now_);
    EventId id = nextId_++;
    pq_.push(Entry{when, id, std::move(cb)});
    pendingIds_.insert(id);
    return id;
}

EventQueue::EventId
EventQueue::scheduleIn(Tick delay, Callback cb)
{
    return schedule(now_ + delay, std::move(cb));
}

bool
EventQueue::deschedule(EventId id)
{
    // The priority queue does not support removal from the middle;
    // dropping the id from the pending set makes run() skip the entry
    // when it surfaces.
    return pendingIds_.erase(id) > 0;
}

std::size_t
EventQueue::run(std::size_t limit)
{
    std::size_t fired = 0;
    while (fired < limit && !pq_.empty()) {
        Entry e = pq_.top();
        pq_.pop();
        if (pendingIds_.erase(e.id) == 0)
            continue; // cancelled
        now_ = e.when;
        ++fired;
        e.cb();
    }
    return fired;
}

std::size_t
EventQueue::runUntil(Tick when)
{
    std::size_t fired = 0;
    while (!pq_.empty() && pq_.top().when <= when) {
        Entry e = pq_.top();
        pq_.pop();
        if (pendingIds_.erase(e.id) == 0)
            continue; // cancelled
        now_ = e.when;
        ++fired;
        e.cb();
    }
    advanceTo(when);
    return fired;
}

void
EventQueue::advanceTo(Tick when)
{
    if (when < now_)
        panic("EventQueue::advanceTo moving backwards");
    now_ = when;
}

} // namespace bssd::sim
