/**
 * @file
 * NVMe-style submission/completion queue pair.
 *
 * The paper's device speaks NVMe 1.2 (Table I); the block experiments
 * run at queue depth one, but a production stack drives the device
 * through SQ/CQ rings with doorbells and out-of-order completions.
 * This layer models that protocol on top of SsdDevice:
 *
 *  - submit() places a command in the SQ (bounded by the queue
 *    depth), rings the doorbell, and lets the device execute it;
 *  - completions carry the command identifier (CID) and a status -
 *    including a real error status when the LBA checker gates a write
 *    to a pinned range (a real driver sees a failed CQE, not a C++
 *    exception);
 *  - poll()/waitFor() consume the CQ in completion-time order, which
 *    is NOT submission order once commands overlap on the media.
 */

#ifndef BSSD_SSD_NVME_QUEUE_HH
#define BSSD_SSD_NVME_QUEUE_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/ticks.hh"
#include "ssd/ssd_device.hh"

namespace bssd::ssd
{

/** Commands the model supports. */
enum class NvmeOpcode : std::uint8_t
{
    read,
    write,
    flush,
};

/** NVMe status codes we distinguish. */
enum class NvmeStatus : std::uint8_t
{
    success,
    /** Write gated by the 2B-SSD LBA checker (pinned range). */
    accessDenied,
    invalidField,
};

/** One submission queue entry. */
struct NvmeCommand
{
    NvmeOpcode opc = NvmeOpcode::flush;
    std::uint16_t cid = 0;
    /** Byte offset on the device. */
    std::uint64_t offset = 0;
    /** Transfer length in bytes (read/write). */
    std::uint32_t length = 0;
    /** Host destination buffer for reads (must outlive completion). */
    std::vector<std::uint8_t> *readBuf = nullptr;
    /** Host source data for writes. */
    std::vector<std::uint8_t> writeData;
};

/** One completion queue entry. */
struct NvmeCompletion
{
    std::uint16_t cid = 0;
    NvmeStatus status = NvmeStatus::success;
    /** Time the CQE (and its interrupt) reached the host. */
    sim::Tick completedAt = 0;
};

/** Queue-pair tunables. */
struct NvmeQueueConfig
{
    /** Submission queue depth (device-side outstanding commands). */
    std::uint16_t depth = 32;
    /** Completion queue depth (unreaped CQEs); 0 = same as depth. */
    std::uint16_t cqDepth = 0;
    /** Doorbell MMIO write cost. */
    sim::Tick doorbellCost = sim::nsOf(400);
    /** Completion posting + interrupt delivery cost. */
    sim::Tick completionCost = sim::usOf(1);
};

/** An I/O queue pair bound to one device. */
class NvmeQueuePair
{
  public:
    NvmeQueuePair(SsdDevice &dev, const NvmeQueueConfig &cfg = {});

    /**
     * Submit a command at time @p now.
     * @return CPU-free time, or nullopt when the SQ is full (the
     *         device still has `depth` commands outstanding) or the
     *         CQ is full (the host sits on `cqDepth` unreaped,
     *         already-arrived CQEs and must reap first).
     */
    std::optional<sim::Tick> submit(sim::Tick now, NvmeCommand cmd);

    /**
     * Pop the oldest completion whose CQE has arrived by @p now.
     * @return nullopt if none is visible yet.
     */
    std::optional<NvmeCompletion> poll(sim::Tick now);

    /**
     * Spin until command @p cid completes.
     * @return its completion entry (completedAt >= now). Completions
     *         for other commands stay queued.
     * @throws sim::SimFatal if @p cid is not in flight.
     */
    NvmeCompletion waitFor(sim::Tick now, std::uint16_t cid);

    /** Commands submitted and not yet reaped. */
    std::uint32_t inFlight() const
    {
        return static_cast<std::uint32_t>(cq_.size());
    }

    /** Commands still executing device-side at @p now (SQ occupancy). */
    std::uint32_t sqInFlight(sim::Tick now) const;

    /** CQEs arrived by @p now but not yet reaped (CQ backlog). */
    std::uint32_t cqBacklog(sim::Tick now) const;

    std::uint16_t depth() const { return cfg_.depth; }

    /** Effective completion queue depth. */
    std::uint16_t
    cqDepth() const
    {
        return cfg_.cqDepth ? cfg_.cqDepth : cfg_.depth;
    }

    /** @name Statistics @{ */
    std::uint64_t submitted() const { return submitted_.value(); }
    std::uint64_t completed() const { return completed_.value(); }
    std::uint64_t errors() const { return errors_.value(); }
    /** Submissions rejected because the SQ was full. */
    std::uint64_t sqFullRejects() const { return sqFullRejects_.value(); }
    /** Submissions rejected because the CQ backlog was full. */
    std::uint64_t cqFullRejects() const { return cqFullRejects_.value(); }
    /** @} */

    /** Install the rig's tracer (nullptr disables). */
    void setTracer(sim::Tracer *t) { tracer_ = t; }

    /** Attach queue counters to @p reg under @p prefix ("nvme0"). */
    void
    registerMetrics(sim::MetricRegistry &reg,
                    const std::string &prefix) const
    {
        reg.addCounter(prefix + ".submitted", submitted_);
        reg.addCounter(prefix + ".completed", completed_);
        reg.addCounter(prefix + ".errors", errors_);
        reg.addCounter(prefix + ".sq_full_rejects", sqFullRejects_);
        reg.addCounter(prefix + ".cq_full_rejects", cqFullRejects_);
        reg.addGauge(prefix + ".in_flight", [this] {
            return static_cast<double>(inFlight());
        });
    }

  private:
    SsdDevice &dev_;
    NvmeQueueConfig cfg_;
    sim::Tracer *tracer_ = nullptr;
    /** Completions pending reap, sorted by completedAt. */
    std::deque<NvmeCompletion> cq_;
    /**
     * Device-side completion times of submitted commands, sorted.
     * Tracks true SQ occupancy independently of reaping: waitFor may
     * pop a future CQE from cq_, but the command still occupies its
     * SQ slot until the device finishes it.
     */
    std::vector<sim::Tick> inflight_;

    sim::Counter submitted_{"nvme.submitted"};
    sim::Counter completed_{"nvme.completed"};
    sim::Counter errors_{"nvme.errors"};
    sim::Counter sqFullRejects_{"nvme.sqFullRejects"};
    sim::Counter cqFullRejects_{"nvme.cqFullRejects"};

    void insertCompletion(NvmeCompletion cpl);
    /** Drop inflight_ entries the device finished by @p now. */
    void pruneInflight(sim::Tick now);
};

} // namespace bssd::ssd

#endif // BSSD_SSD_NVME_QUEUE_HH
