/**
 * @file
 * NVMe multi-queue frontend (DESIGN.md section 15).
 *
 * A production host drives an NVMe device through several I/O queue
 * pairs - one per core, classically - and the controller arbitrates
 * between them. This layer models that: N NvmeQueuePairs over one
 * SsdDevice with round-robin submission arbitration (the NVMe
 * mandatory arbitration scheme) and round-robin completion reaping.
 *
 * submit() offers the command to the pairs starting at the arbitration
 * cursor and places it on the first pair with both an SQ slot and CQ
 * headroom, then advances the cursor past the chosen pair - so a
 * saturated or backlogged queue never starves its neighbours. poll()
 * reaps the same way. Both cursors advance deterministically from the
 * call sequence alone.
 */

#ifndef BSSD_SSD_NVME_MULTI_QUEUE_HH
#define BSSD_SSD_NVME_MULTI_QUEUE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/ticks.hh"
#include "ssd/nvme_queue.hh"

namespace bssd::ssd
{

/** N round-robin-arbitrated I/O queue pairs bound to one device. */
class NvmeMultiQueue
{
  public:
    /**
     * @param dev    the device all pairs submit to
     * @param queues number of I/O queue pairs (>= 1)
     * @param qcfg   per-pair tunables (depth is per pair)
     */
    NvmeMultiQueue(SsdDevice &dev, std::uint16_t queues,
                   const NvmeQueueConfig &qcfg = {});

    /** Where a command landed. */
    struct Submitted
    {
        std::uint16_t queue = 0;
        sim::Tick cpuFree = 0;
    };

    /**
     * Submit via round-robin arbitration at time @p now.
     * @return the accepting queue and CPU-free time, or nullopt when
     *         every pair is at capacity.
     */
    std::optional<Submitted> submit(sim::Tick now, NvmeCommand cmd);

    /**
     * Reap one completion visible at @p now, round-robin across the
     * pairs' CQs. @return nullopt when nothing has arrived.
     */
    std::optional<NvmeCompletion> poll(sim::Tick now);

    std::size_t queues() const { return pairs_.size(); }
    NvmeQueuePair &pair(std::size_t i) { return *pairs_[i]; }
    const NvmeQueuePair &pair(std::size_t i) const { return *pairs_[i]; }

    /** Unreaped completions across all pairs. */
    std::uint32_t
    inFlight() const
    {
        std::uint32_t n = 0;
        for (const auto &p : pairs_)
            n += p->inFlight();
        return n;
    }

    /** Commands still executing device-side at @p now, all pairs. */
    std::uint32_t
    sqInFlight(sim::Tick now) const
    {
        std::uint32_t n = 0;
        for (const auto &p : pairs_)
            n += p->sqInFlight(now);
        return n;
    }

    /** Install the rig's tracer into every pair (nullptr disables). */
    void
    setTracer(sim::Tracer *t)
    {
        for (auto &p : pairs_)
            p->setTracer(t);
    }

    /**
     * Attach per-pair counters to @p reg under @p prefix ("nvme0"):
     * pair i registers under prefix.qi.
     */
    void
    registerMetrics(sim::MetricRegistry &reg,
                    const std::string &prefix) const
    {
        for (std::size_t i = 0; i < pairs_.size(); ++i)
            pairs_[i]->registerMetrics(reg,
                                       prefix + ".q" + std::to_string(i));
    }

  private:
    std::vector<std::unique_ptr<NvmeQueuePair>> pairs_;
    std::size_t submitCursor_ = 0;
    std::size_t pollCursor_ = 0;
};

} // namespace bssd::ssd

#endif // BSSD_SSD_NVME_MULTI_QUEUE_HH
