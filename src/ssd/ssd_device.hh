/**
 * @file
 * NVMe-class block SSD model: frontend, capacitor-backed write buffer,
 * read-ahead, FTL and NAND backend behind a PCIe link.
 *
 * Two calibrated presets mirror the paper's comparison devices
 * (Section V-A):
 *  - SsdConfig::dcSsd()  - the datacenter-class PM963 ("DC-SSD")
 *  - SsdConfig::ullSsd() - the ultra-low-latency Z-SSD ("ULL-SSD")
 *
 * The 2B-SSD model (ba/two_b_ssd.hh) piggybacks on a ULL-class device,
 * exactly as the prototype does, so its block path is identical to the
 * ULL-SSD's.
 */

#ifndef BSSD_SSD_SSD_DEVICE_HH
#define BSSD_SSD_SSD_DEVICE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <span>
#include <string>

#include "ftl/ftl.hh"
#include "nand/nand_flash.hh"
#include "pcie/pcie_link.hh"
#include "ssd/dram_cache.hh"
#include "sim/domain.hh"
#include "sim/metrics.hh"
#include "sim/resource.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace bssd::ssd
{

/**
 * Thrown when a block write is rejected by the LBA checker because it
 * targets NAND pages currently pinned to the BA-buffer.
 */
class WriteGatedError : public std::runtime_error
{
  public:
    explicit WriteGatedError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Full device configuration (Table I analogue). */
struct SsdConfig
{
    std::string name = "ssd";
    nand::NandConfig nandCfg;
    ftl::FtlConfig ftlCfg;
    pcie::PcieConfig pcieCfg;

    /** Queueing + protocol cost of a read command before media. */
    sim::Tick readFrontend = sim::usOf(5.5);
    /** Queueing + protocol cost of a write command. */
    sim::Tick writeFrontend = sim::usOf(8.5);
    /** NVMe FLUSH round trip (cheap: the buffer is capacitor-backed). */
    sim::Tick flushCost = sim::usOf(12);
    /**
     * @name Firmware CPU (SimpleSSD-style per-command overhead)
     *
     * One core runs the command firmware: every command holds it for
     * its cost, serializing against all other commands regardless of
     * which die or channel they target. 0 skips the stage. The presets
     * carve these out of the frontend costs, so QD1 latency sums are
     * unchanged while concurrent commands pipeline the two stages.
     * @{
     */
    sim::Tick fwReadCost = 0;
    sim::Tick fwWriteCost = 0;
    sim::Tick fwFlushCost = 0;
    /** @} */
    /**
     * @name Controller DRAM read cache
     *
     * A read whose bytes are all resident completes after the DRAM
     * access latency without touching NAND; writes invalidate. 0
     * disables (the tiny preset keeps it off so functional and crash
     * rigs are cache-free).
     * @{
     */
    std::uint64_t dramCacheBytes = 0;
    std::uint64_t dramLineBytes = 16 * sim::KiB;
    sim::Tick dramAccessLatency = sim::usOf(2);
    /** @} */
    /** Capacitor-backed write buffer capacity. */
    std::uint64_t writeBufferBytes = 64 * sim::MiB;
    /** Sequential read-ahead (the heuristic the paper notes for
     *  datacenter SSDs, Section V-B). */
    bool readAhead = false;
    /** Pages fetched ahead on a sequential stream. */
    std::uint32_t readAheadPages = 64;
    /**
     * FUA-style writes: the command completes only when the FTL
     * destage (including any GC stall charged to it) finishes, not at
     * buffer admission. Default off - the capacitor-backed buffer is
     * what the paper's devices expose. bench_tail_latency turns this
     * on so the foreground-vs-background GC ablation measures the
     * stall at the host.
     */
    bool writeThrough = false;

    /** Datacenter-class NVMe SSD (PM963-like). */
    static SsdConfig dcSsd();
    /** Ultra-low-latency NVMe SSD (Z-SSD-like). */
    static SsdConfig ullSsd();
    /** Small geometry for unit tests. */
    static SsdConfig tiny();
};

/**
 * A block-interface NVMe SSD. Offsets and lengths are in bytes;
 * unaligned accesses are handled with page read-modify-write, like a
 * real FTL would.
 */
class SsdDevice
{
  public:
    explicit SsdDevice(const SsdConfig &cfg);
    ~SsdDevice();

    const SsdConfig &config() const { return cfg_; }
    std::uint64_t capacityBytes() const;
    std::uint32_t pageSize() const { return ftl_->pageSize(); }

    /**
     * Block read of @p out.size() bytes at @p offset.
     * @return granted interval; end is command completion at the host.
     */
    sim::Interval blockRead(sim::Tick ready, std::uint64_t offset,
                            std::span<std::uint8_t> out);

    /**
     * Block write of @p data at @p offset. Completes when the data is
     * in the capacitor-backed write buffer (durable); NAND destage
     * happens behind the scenes at the drain rate.
     */
    sim::Interval blockWrite(sim::Tick ready, std::uint64_t offset,
                             std::span<const std::uint8_t> data);

    /** NVMe FLUSH. With power-loss protection this is a cheap barrier. */
    sim::Tick flush(sim::Tick ready);

    /** TRIM a byte range (page-aligned portions only). */
    void trim(std::uint64_t offset, std::uint64_t len);

    /**
     * @name Sub-component access (2B-SSD extensions, tests, stats)
     *
     * These hand out mutable sub-objects of the device domain; every
     * product caller (ba::TwoBSsd, recovery, stats) composes onto the
     * device inside its own domain, and BSSD_DOMAIN_CHECK builds
     * verify at run time that no other domain's thread ever touches
     * them (DESIGN.md section 16).
     * @{
     */
    // bssd-lint: allow(own-raw-handle-escape) same-domain composition
    ftl::Ftl &ftl() { return *ftl_; }
    const ftl::Ftl &ftl() const { return *ftl_; }
    // bssd-lint: allow(own-raw-handle-escape) same-domain composition
    nand::NandFlash &flash() { return *flash_; }
    // bssd-lint: allow(own-raw-handle-escape) same-domain composition
    pcie::PcieLink &link() { return link_; }
    /**
     * The device's simulation domain. Device-internal background
     * activity (recovery dump sequence, DMA completion interrupts)
     * runs as events on its queue; multi-device runs register the
     * domain with a sim::ParallelEngine and the device side of the
     * PCIe boundary executes concurrently with the host domain.
     */
    sim::Domain &domain() { return domain_; }
    const sim::Domain &domain() const { return domain_; }
    /** @} */

    /** @name Statistics @{ */
    std::uint64_t readsServed() const { return reads_.value(); }
    std::uint64_t writesServed() const { return writes_.value(); }
    std::uint64_t flushesServed() const { return flushes_.value(); }
    std::uint64_t readAheadHits() const { return raHits_.value(); }
    /** DRAM read-cache presence tracker (hit/miss counters). */
    const DramCache &dramCache() const { return dram_; }

    /** Per-command completion latency (ticks), host-observed. */
    const sim::Histogram &readLatency() const { return readLat_; }
    const sim::Histogram &writeLatency() const { return writeLat_; }
    /** @} */

    /**
     * An optional hook consulted before every block write; the 2B-SSD
     * LBA checker installs itself here to gate writes to pinned
     * ranges (Section III-A2). Return false to reject the command.
     */
    using WriteGate = std::function<bool(std::uint64_t offset,
                                         std::uint64_t len)>;
    void setWriteGate(WriteGate gate) { writeGate_ = std::move(gate); }

    /**
     * Install the rig's fault injector into the frontend and every
     * sub-component (FTL, NAND, PCIe). nullptr uninstalls.
     */
    void setFaultInjector(sim::FaultInjector *f)
    {
        faults_ = f;
        ftl_->setFaultInjector(f);
        flash_->setFaultInjector(f);
        link_.setFaultInjector(f);
    }

    /**
     * Install the rig's tracer into the frontend and every
     * sub-component. nullptr uninstalls.
     */
    void setTracer(sim::Tracer *t)
    {
        tracer_ = t;
        ftl_->setTracer(t);
        flash_->setTracer(t);
        link_.setTracer(t);
    }

    /**
     * Attach this device's statistics (and its FTL/NAND/PCIe
     * sub-components) to @p reg under @p prefix ("ssd0").
     */
    void registerMetrics(sim::MetricRegistry &reg,
                         const std::string &prefix) const;

  private:
    SsdConfig cfg_;
    sim::Domain domain_{cfg_.name};
    sim::FaultInjector *faults_ = nullptr;
    sim::Tracer *tracer_ = nullptr;
    std::unique_ptr<nand::NandFlash> flash_;
    std::unique_ptr<ftl::Ftl> ftl_;
    pcie::PcieLink link_;
    sim::FifoResource frontend_{"ssd.frontend"};
    /** The firmware core every command serializes on (cost > 0). */
    sim::FifoResource fwCpu_{"ssd.fwcpu"};
    DramCache dram_;
    sim::DrainingBuffer writeBuffer_;
    WriteGate writeGate_;

    // Read-ahead state.
    ftl::Lpn prefetchStart_ = 0;
    std::uint64_t prefetchCount_ = 0;
    sim::Tick prefetchReady_ = 0;
    ftl::Lpn nextSeqLpn_ = ~ftl::Lpn(0);

    sim::Counter reads_{"ssd.reads"};
    sim::Counter writes_{"ssd.writes"};
    sim::Counter flushes_{"ssd.flushes"};
    sim::Counter raHits_{"ssd.readAheadHits"};
    // Log-linear histograms: O(1) record, fine for the per-I/O path.
    sim::Histogram readLat_{"ssd.readLat"};
    sim::Histogram writeLat_{"ssd.writeLat"};

    static sim::Bandwidth drainRate(const SsdConfig &cfg);
    bool prefetched(ftl::Lpn lpn, std::uint64_t pages) const;
    void startPrefetch(sim::Tick now, ftl::Lpn lpn);
    /** Reserve the firmware core; pass-through when the cost is 0. */
    sim::Tick fwCpu(sim::Tick ready, sim::Tick cost);
};

} // namespace bssd::ssd

#endif // BSSD_SSD_SSD_DEVICE_HH
