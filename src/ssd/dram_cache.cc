#include "ssd/dram_cache.hh"

#include "sim/logging.hh"

namespace bssd::ssd
{

DramCache::DramCache(std::uint64_t capacityBytes, std::uint64_t lineBytes)
    : lineBytes_(lineBytes), lines_(0)
{
    if (capacityBytes == 0)
        return; // disabled
    if (lineBytes == 0)
        sim::fatal("DRAM cache line size must be non-zero");
    lines_ = capacityBytes / lineBytes;
    if (lines_ == 0)
        sim::fatal("DRAM cache smaller than one line (", capacityBytes,
                   " < ", lineBytes, ")");
}

std::uint64_t
DramCache::firstLine(std::uint64_t offset) const
{
    return offset / lineBytes_;
}

std::uint64_t
DramCache::lastLine(std::uint64_t offset, std::uint64_t bytes) const
{
    return bytes == 0 ? firstLine(offset)
                      : (offset + bytes - 1) / lineBytes_;
}

bool
DramCache::lookup(std::uint64_t offset, std::uint64_t bytes)
{
    if (!enabled())
        return false;
    const std::uint64_t lo = firstLine(offset);
    const std::uint64_t hi = lastLine(offset, bytes);
    for (std::uint64_t line = lo; line <= hi; ++line) {
        if (!map_.contains(line)) {
            misses_.add();
            return false;
        }
    }
    // Full hit: refresh every covered line to MRU, in address order.
    for (std::uint64_t line = lo; line <= hi; ++line) {
        auto it = map_.find(line);
        lru_.splice(lru_.begin(), lru_, it->second);
    }
    hits_.add();
    return true;
}

void
DramCache::fill(std::uint64_t offset, std::uint64_t bytes)
{
    if (!enabled())
        return;
    const std::uint64_t lo = firstLine(offset);
    const std::uint64_t hi = lastLine(offset, bytes);
    for (std::uint64_t line = lo; line <= hi; ++line) {
        auto it = map_.find(line);
        if (it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            continue;
        }
        if (lru_.size() >= lines_) {
            map_.erase(lru_.back());
            lru_.pop_back();
            evictions_.add();
        }
        lru_.push_front(line);
        map_[line] = lru_.begin();
        fills_.add();
    }
}

void
DramCache::invalidate(std::uint64_t offset, std::uint64_t bytes)
{
    if (!enabled())
        return;
    const std::uint64_t lo = firstLine(offset);
    const std::uint64_t hi = lastLine(offset, bytes);
    for (std::uint64_t line = lo; line <= hi; ++line) {
        auto it = map_.find(line);
        if (it == map_.end())
            continue;
        lru_.erase(it->second);
        map_.erase(it);
    }
}

} // namespace bssd::ssd
