/**
 * @file
 * Controller DRAM read cache (DESIGN.md section 15).
 *
 * A fully-associative LRU cache of aligned byte ranges ("lines") of
 * the logical address space, fronting the FTL on the device read
 * path. A read whose bytes are entirely resident is served from DRAM
 * at a fixed access latency and never touches the NAND calendars; a
 * miss runs the normal FTL read and then fills the covering lines.
 * Writes and TRIMs invalidate the lines they touch - the functional
 * store below stays the single source of truth, so the cache needs no
 * data copies of its own, only presence tracking.
 *
 * Determinism: presence and LRU order depend only on the call
 * sequence; no clocks, no randomness.
 */

#ifndef BSSD_SSD_DRAM_CACHE_HH
#define BSSD_SSD_DRAM_CACHE_HH

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "sim/metrics.hh"
#include "sim/stats.hh"

namespace bssd::ssd
{

/** LRU presence tracker for the controller's DRAM read cache. */
class DramCache
{
  public:
    /**
     * @param capacityBytes total cache size (0 disables the cache)
     * @param lineBytes     cache-line size (power-of-two aligned
     *                      ranges of the logical space)
     */
    DramCache(std::uint64_t capacityBytes, std::uint64_t lineBytes);

    bool enabled() const { return lines_ > 0; }

    /**
     * Look up [offset, offset + bytes). A hit (every covered line
     * resident) refreshes the lines' LRU position. Counted either way.
     * @return true on a full hit
     */
    bool lookup(std::uint64_t offset, std::uint64_t bytes);

    /** Insert the lines covering the range, evicting LRU lines. */
    void fill(std::uint64_t offset, std::uint64_t bytes);

    /** Drop the lines covering the range (write / TRIM). */
    void invalidate(std::uint64_t offset, std::uint64_t bytes);

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t residentLines() const { return map_.size(); }

    /** Attach counters to @p reg under @p prefix ("ssd0.dram"). */
    void
    registerMetrics(sim::MetricRegistry &reg,
                    const std::string &prefix) const
    {
        reg.addCounter(prefix + ".hits", hits_);
        reg.addCounter(prefix + ".misses", misses_);
        reg.addCounter(prefix + ".fills", fills_);
        reg.addCounter(prefix + ".evictions", evictions_);
    }

  private:
    std::uint64_t lineBytes_;
    std::uint64_t lines_; // capacity in lines (0 = disabled)

    /** MRU-first recency list of resident line indices. */
    std::list<std::uint64_t> lru_;
    // Audited (DESIGN.md section 11): keyed access only; eviction
    // order comes from the lru_ list, never from map iteration.
    // bssd-lint: allow(det-unordered-member) keyed access only, never iterated
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        map_;

    sim::Counter hits_{"dram.hits"};
    sim::Counter misses_{"dram.misses"};
    sim::Counter fills_{"dram.fills"};
    sim::Counter evictions_{"dram.evictions"};

    std::uint64_t firstLine(std::uint64_t offset) const;
    std::uint64_t lastLine(std::uint64_t offset, std::uint64_t bytes) const;
};

} // namespace bssd::ssd

#endif // BSSD_SSD_DRAM_CACHE_HH
