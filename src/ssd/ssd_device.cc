#include "ssd/ssd_device.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bssd::ssd
{

SsdConfig
SsdConfig::dcSsd()
{
    SsdConfig c;
    c.name = "DC-SSD";
    c.nandCfg = nand::NandConfig::tlcDatacenter();
    // Frontend/firmware split sums to the calibrated 8/15.5/20 us
    // command overheads, so QD1 latencies are unchanged.
    c.readFrontend = sim::usOf(6);
    c.fwReadCost = sim::usOf(2);
    c.writeFrontend = sim::usOf(13);
    c.fwWriteCost = sim::usOf(2.5);
    c.flushCost = sim::usOf(18);
    c.fwFlushCost = sim::usOf(2);
    c.writeBufferBytes = 64 * sim::MiB;
    c.dramCacheBytes = 32 * sim::MiB;
    c.readAhead = true;
    // Production firmware collects in the background and prioritizes
    // host reads over internal traffic (DESIGN.md section 10).
    c.ftlCfg.backgroundGc = true;
    c.nandCfg.sched.readPriority = true;
    c.nandCfg.sched.eraseSuspend = true;
    return c;
}

SsdConfig
SsdConfig::ullSsd()
{
    SsdConfig c;
    c.name = "ULL-SSD";
    c.nandCfg = nand::NandConfig::slcUltraLowLatency();
    // Same split discipline as dcSsd: sums stay 6.8/8.5/12 us.
    c.readFrontend = sim::usOf(5.3);
    c.fwReadCost = sim::usOf(1.5);
    c.writeFrontend = sim::usOf(7);
    c.fwWriteCost = sim::usOf(1.5);
    c.flushCost = sim::usOf(11);
    c.fwFlushCost = sim::usOf(1);
    c.writeBufferBytes = 64 * sim::MiB;
    c.dramCacheBytes = 32 * sim::MiB;
    c.dramAccessLatency = sim::usOf(1);
    c.readAhead = true;
    c.ftlCfg.backgroundGc = true;
    c.nandCfg.sched.readPriority = true;
    c.nandCfg.sched.eraseSuspend = true;
    return c;
}

SsdConfig
SsdConfig::tiny()
{
    SsdConfig c;
    c.name = "tiny-ssd";
    c.nandCfg = nand::NandConfig::tiny();
    c.nandCfg.geometry.blocksPerDie = 32;
    c.ftlCfg.gcLowWaterBlocks = 4;
    c.ftlCfg.gcHighWaterBlocks = 8;
    // Split sums to 5/8/10 us; the DRAM cache stays off so the
    // functional and crash-recovery rigs see every NAND access.
    c.readFrontend = sim::usOf(4);
    c.fwReadCost = sim::usOf(1);
    c.writeFrontend = sim::usOf(6.5);
    c.fwWriteCost = sim::usOf(1.5);
    c.flushCost = sim::usOf(9);
    c.fwFlushCost = sim::usOf(1);
    c.writeBufferBytes = sim::MiB;
    c.readAhead = true;
    c.readAheadPages = 8;
    return c;
}

sim::Bandwidth
SsdDevice::drainRate(const SsdConfig &cfg)
{
    const auto &t = cfg.nandCfg.timing;
    const double per_die =
        static_cast<double>(t.programChunkBytes) /
        static_cast<double>(t.programChunk);
    return sim::Bandwidth{per_die * cfg.nandCfg.geometry.totalDies()};
}

SsdDevice::SsdDevice(const SsdConfig &cfg)
    : cfg_(cfg),
      flash_(std::make_unique<nand::NandFlash>(cfg.nandCfg)),
      ftl_(std::make_unique<ftl::Ftl>(*flash_, cfg.ftlCfg)),
      link_(cfg.pcieCfg),
      dram_(cfg.dramCacheBytes, cfg.dramLineBytes),
      writeBuffer_(cfg.writeBufferBytes, drainRate(cfg))
{
    domain_.adopt(this, sizeof(*this), "ssd.device");
    domain_.adopt(flash_.get(), sizeof(nand::NandFlash), "ssd.flash");
    domain_.adopt(ftl_.get(), sizeof(ftl::Ftl), "ssd.ftl");
}

SsdDevice::~SsdDevice()
{
    domain_.release(ftl_.get());
    domain_.release(flash_.get());
    domain_.release(this);
}

sim::Tick
SsdDevice::fwCpu(sim::Tick ready, sim::Tick cost)
{
    if (cost == 0)
        return ready;
    auto iv = fwCpu_.reserve(ready, cost);
    if (tracer_)
        tracer_->phase("fwcpu", ready, iv.end);
    return iv.end;
}

std::uint64_t
SsdDevice::capacityBytes() const
{
    return ftl_->logicalPages() * ftl_->pageSize();
}

bool
SsdDevice::prefetched(ftl::Lpn lpn, std::uint64_t pages) const
{
    return prefetchCount_ > 0 && lpn >= prefetchStart_ &&
           lpn + pages <= prefetchStart_ + prefetchCount_;
}

void
SsdDevice::startPrefetch(sim::Tick now, ftl::Lpn lpn)
{
    std::uint64_t count = cfg_.readAheadPages;
    if (lpn >= ftl_->logicalPages()) {
        prefetchCount_ = 0;
        return;
    }
    count = std::min<std::uint64_t>(count, ftl_->logicalPages() - lpn);
    prefetchStart_ = lpn;
    prefetchCount_ = count;
    // The prefetch occupies media now; the data is ready when the
    // batch read finishes.
    prefetchReady_ = ftl_->prefetch(now, lpn, count).end;
}

sim::Interval
SsdDevice::blockRead(sim::Tick ready, std::uint64_t offset,
                     std::span<std::uint8_t> out)
{
    BSSD_OWN_GUARD(this);
    const std::uint64_t bytes = out.size();
    if (bytes == 0)
        return {ready, ready};
    if (offset + bytes > capacityBytes())
        sim::fatal(cfg_.name, ": block read past capacity");
    reads_.add();

    const std::uint32_t ps = ftl_->pageSize();
    const ftl::Lpn lpn = offset / ps;
    const std::uint64_t last = (offset + bytes - 1) / ps;
    const std::uint64_t pages = last - lpn + 1;

    sim::SpanId sp = tracer_
        ? tracer_->beginSpan("ssd", "blockRead", ready)
        : 0;
    auto fe = frontend_.reserve(ready, cfg_.readFrontend);
    if (tracer_)
        tracer_->phase("frontend", ready, fe.end);
    sim::Tick t = fwCpu(fe.end, cfg_.fwReadCost);

    std::vector<std::uint8_t> buf(pages * ps);

    // Controller DRAM read cache: a fully-resident range is served
    // from DRAM and never touches the NAND calendars.
    if (dram_.lookup(offset, bytes)) {
        ftl_->readUntimed(lpn, pages, buf);
        sim::Tick served = t + cfg_.dramAccessLatency;
        std::copy_n(buf.begin() +
                        static_cast<std::ptrdiff_t>(offset - lpn * ps),
                    bytes, out.begin());
        auto dma_iv = link_.dma(t, bytes);
        sim::Tick end = std::max(served, dma_iv.end);
        nextSeqLpn_ = lpn + pages;
        if (tracer_) {
            sim::SpanId hit = tracer_->beginSpan("ssd", "dram_hit", t);
            tracer_->endSpan(hit, served);
            tracer_->phase("internal", t, served);
            if (end > served)
                tracer_->phase("xfer", served, end);
            tracer_->endSpan(sp, end);
        }
        readLat_.record(end - ready);
        return {ready, end};
    }

    sim::Tick media_end;
    if (cfg_.readAhead && prefetched(lpn, pages)) {
        raHits_.add();
        ftl_->readUntimed(lpn, pages, buf);
        media_end = std::max(t, prefetchReady_);
        // Keep the stream warm past the current window.
        if (lpn + pages >= prefetchStart_ + prefetchCount_)
            startPrefetch(media_end, lpn + pages);
    } else {
        auto iv = ftl_->read(t, lpn, pages, buf);
        media_end = iv.end;
        if (cfg_.readAhead && lpn == nextSeqLpn_)
            startPrefetch(media_end, lpn + pages);
    }
    nextSeqLpn_ = lpn + pages;
    // Misses fill the cache with the pages just read.
    dram_.fill(lpn * std::uint64_t(ps), pages * std::uint64_t(ps));

    std::copy_n(buf.begin() +
                    static_cast<std::ptrdiff_t>(offset - lpn * ps),
                bytes, out.begin());

    // Host transfer is pipelined with the media phase; completion is
    // bounded by whichever finishes later.
    auto dma_iv = link_.dma(t, bytes);
    sim::Tick end = std::max(media_end, dma_iv.end);
    if (tracer_) {
        tracer_->phase("media", t, media_end);
        if (end > media_end)
            tracer_->phase("xfer", media_end, end);
        tracer_->endSpan(sp, end);
    }
    readLat_.record(end - ready);
    return {ready, end};
}

sim::Interval
SsdDevice::blockWrite(sim::Tick ready, std::uint64_t offset,
                      std::span<const std::uint8_t> data)
{
    BSSD_OWN_GUARD(this);
    const std::uint64_t bytes = data.size();
    if (bytes == 0)
        return {ready, ready};
    if (offset + bytes > capacityBytes())
        sim::fatal(cfg_.name, ": block write past capacity");
    if (writeGate_ && !writeGate_(offset, bytes)) {
        throw WriteGatedError(
            cfg_.name + ": block write rejected by LBA checker");
    }
    writes_.add();
    sim::SpanId sp = tracer_
        ? tracer_->beginSpan("ssd", "blockWrite", ready)
        : 0;
    sim::tracepointHit(faults_, tracer_, sim::Tp::ssdWriteStart, ready);
    // Writes invalidate any read-ahead window (the stream is broken).
    prefetchCount_ = 0;

    const std::uint32_t ps = ftl_->pageSize();
    const ftl::Lpn lpn = offset / ps;
    const std::uint64_t last = (offset + bytes - 1) / ps;
    const std::uint64_t pages = last - lpn + 1;
    // New data makes any cached copy of these pages stale.
    dram_.invalidate(lpn * std::uint64_t(ps), pages * std::uint64_t(ps));

    auto fe = frontend_.reserve(ready, cfg_.writeFrontend);
    if (tracer_)
        tracer_->phase("frontend", ready, fe.end);
    sim::Tick cpu = fwCpu(fe.end, cfg_.fwWriteCost);
    auto dma_iv = link_.dma(cpu, bytes);
    sim::Tick t = dma_iv.end;
    if (tracer_)
        tracer_->phase("xfer", cpu, t);

    // Unaligned head/tail: read-modify-write the surrounding pages.
    std::vector<std::uint8_t> buf(pages * ps);
    const bool head_partial = offset % ps != 0;
    const bool tail_partial = (offset + bytes) % ps != 0;
    if (head_partial)
        ftl_->readUntimed(lpn, 1, std::span(buf.data(), ps));
    if (tail_partial && (pages > 1 || !head_partial)) {
        ftl_->readUntimed(last, 1,
                          std::span(buf.data() + (pages - 1) * ps, ps));
    }
    std::copy(data.begin(), data.end(),
              buf.begin() +
                  static_cast<std::ptrdiff_t>(offset - lpn * ps));

    // The command completes when the data sits in the capacitor-backed
    // buffer; destage happens at the NAND drain rate behind the host's
    // back (and still loads the die calendars, contending with reads).
    sim::Tick admitted = writeBuffer_.admit(t, pages * ps);
    sim::tracepointHit(faults_, tracer_, sim::Tp::ssdWriteAdmit,
                       admitted);
    if (tracer_)
        tracer_->phase("buffer", t, admitted);
    // The destage span nests under this command's span: GC storms the
    // write triggers show up attributed to it, even though the host
    // sees only the buffer-admission latency (unless writeThrough,
    // where the command completes with the destage itself).
    auto ftl_iv = ftl_->write(admitted, lpn, pages, buf);
    sim::Tick done = cfg_.writeThrough
        ? std::max(admitted, ftl_iv.end)
        : admitted;
    if (tracer_) {
        if (done > admitted)
            tracer_->phase("destage", admitted, done);
        tracer_->endSpan(sp, done);
    }
    writeLat_.record(done - ready);
    return {ready, done};
}

sim::Tick
SsdDevice::flush(sim::Tick ready)
{
    BSSD_OWN_GUARD(this);
    sim::SpanId sp = tracer_
        ? tracer_->beginSpan("ssd", "flush", ready)
        : 0;
    sim::tracepointHit(faults_, tracer_, sim::Tp::ssdFlush, ready);
    flushes_.add();
    auto fe = frontend_.reserve(ready, cfg_.flushCost);
    if (tracer_)
        tracer_->phase("frontend", ready, fe.end);
    sim::Tick end = fwCpu(fe.end, cfg_.fwFlushCost);
    if (tracer_)
        tracer_->endSpan(sp, end);
    return end;
}

void
SsdDevice::registerMetrics(sim::MetricRegistry &reg,
                           const std::string &prefix) const
{
    reg.addCounter(prefix + ".reads", reads_);
    reg.addCounter(prefix + ".writes", writes_);
    reg.addCounter(prefix + ".flushes", flushes_);
    reg.addCounter(prefix + ".read_ahead_hits", raHits_);
    reg.addHistogram(prefix + ".read_lat", readLat_);
    reg.addHistogram(prefix + ".write_lat", writeLat_);
    if (dram_.enabled())
        dram_.registerMetrics(reg, prefix + ".dram");
    ftl_->registerMetrics(reg, prefix + ".ftl");
    flash_->registerMetrics(reg, prefix + ".nand");
    link_.registerMetrics(reg, prefix + ".pcie");
}

void
SsdDevice::trim(std::uint64_t offset, std::uint64_t len)
{
    BSSD_OWN_GUARD(this);
    dram_.invalidate(offset, len);
    const std::uint32_t ps = ftl_->pageSize();
    std::uint64_t first = (offset + ps - 1) / ps;
    std::uint64_t end = (offset + len) / ps;
    if (end > first)
        ftl_->trim(first, end - first);
}

} // namespace bssd::ssd
