#include "ssd/nvme_multi_queue.hh"

#include "sim/logging.hh"

namespace bssd::ssd
{

NvmeMultiQueue::NvmeMultiQueue(SsdDevice &dev, std::uint16_t queues,
                               const NvmeQueueConfig &qcfg)
{
    if (queues == 0)
        sim::fatal("NVMe multi-queue needs at least one queue pair");
    pairs_.reserve(queues);
    for (std::uint16_t i = 0; i < queues; ++i)
        pairs_.push_back(std::make_unique<NvmeQueuePair>(dev, qcfg));
}

std::optional<NvmeMultiQueue::Submitted>
NvmeMultiQueue::submit(sim::Tick now, NvmeCommand cmd)
{
    for (std::size_t tried = 0; tried < pairs_.size(); ++tried) {
        const std::size_t q = (submitCursor_ + tried) % pairs_.size();
        auto cpu = pairs_[q]->submit(now, cmd);
        if (!cpu)
            continue; // pair at capacity; offer to the next one
        submitCursor_ = (q + 1) % pairs_.size();
        return Submitted{static_cast<std::uint16_t>(q), *cpu};
    }
    return std::nullopt; // every pair is full
}

std::optional<NvmeCompletion>
NvmeMultiQueue::poll(sim::Tick now)
{
    for (std::size_t tried = 0; tried < pairs_.size(); ++tried) {
        const std::size_t q = (pollCursor_ + tried) % pairs_.size();
        auto cpl = pairs_[q]->poll(now);
        if (!cpl)
            continue;
        pollCursor_ = (q + 1) % pairs_.size();
        return cpl;
    }
    return std::nullopt;
}

} // namespace bssd::ssd
