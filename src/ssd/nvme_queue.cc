#include "ssd/nvme_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bssd::ssd
{

NvmeQueuePair::NvmeQueuePair(SsdDevice &dev, const NvmeQueueConfig &cfg)
    : dev_(dev), cfg_(cfg)
{
    if (cfg_.depth == 0)
        sim::fatal("NVMe queue depth must be non-zero");
}

void
NvmeQueuePair::insertCompletion(NvmeCompletion cpl)
{
    auto it = std::upper_bound(
        cq_.begin(), cq_.end(), cpl,
        [](const NvmeCompletion &a, const NvmeCompletion &b) {
            return a.completedAt < b.completedAt;
        });
    cq_.insert(it, cpl);
}

void
NvmeQueuePair::pruneInflight(sim::Tick now)
{
    auto it = std::upper_bound(inflight_.begin(), inflight_.end(), now);
    inflight_.erase(inflight_.begin(), it);
}

std::uint32_t
NvmeQueuePair::sqInFlight(sim::Tick now) const
{
    auto it = std::upper_bound(inflight_.begin(), inflight_.end(), now);
    return static_cast<std::uint32_t>(inflight_.end() - it);
}

std::uint32_t
NvmeQueuePair::cqBacklog(sim::Tick now) const
{
    std::uint32_t n = 0;
    for (const auto &c : cq_) {
        if (c.completedAt > now)
            break; // sorted: the rest are still in the future
        ++n;
    }
    return n;
}

std::optional<sim::Tick>
NvmeQueuePair::submit(sim::Tick now, NvmeCommand cmd)
{
    pruneInflight(now);
    // SQ occupancy gates on commands the device is still executing -
    // NOT on unreaped completions: a promptly-polling host must not
    // unlock unbounded device-side in-flight, and a lazy reaper must
    // not starve the device of submissions it could absorb.
    if (inflight_.size() >= cfg_.depth) {
        sqFullRejects_.add();
        return std::nullopt; // SQ full: outstanding commands at cap
    }
    if (cqBacklog(now) >= cqDepth()) {
        cqFullRejects_.add();
        return std::nullopt; // CQ full: reap completions first
    }
    submitted_.add();

    sim::SpanId sp = 0;
    if (tracer_) {
        const char *op = cmd.opc == NvmeOpcode::read ? "read"
            : cmd.opc == NvmeOpcode::write           ? "write"
                                                     : "flush";
        sp = tracer_->beginSpan("nvme", op, now);
    }

    // SQE write + doorbell; the CPU is free once the doorbell lands.
    sim::Tick cpu_free = now + cfg_.doorbellCost;

    NvmeCompletion cpl;
    cpl.cid = cmd.cid;
    cpl.status = NvmeStatus::success;
    sim::Tick device_done = cpu_free;

    switch (cmd.opc) {
      case NvmeOpcode::read: {
        if (!cmd.readBuf || cmd.readBuf->size() < cmd.length) {
            cpl.status = NvmeStatus::invalidField;
            break;
        }
        auto iv = dev_.blockRead(
            cpu_free, cmd.offset,
            std::span<std::uint8_t>(cmd.readBuf->data(), cmd.length));
        device_done = iv.end;
        break;
      }
      case NvmeOpcode::write: {
        if (cmd.writeData.size() != cmd.length) {
            cpl.status = NvmeStatus::invalidField;
            break;
        }
        try {
            auto iv = dev_.blockWrite(cpu_free, cmd.offset,
                                      cmd.writeData);
            device_done = iv.end;
        } catch (const WriteGatedError &) {
            // The LBA checker rejected the command: the host sees a
            // CQE with an error status, exactly like real hardware.
            cpl.status = NvmeStatus::accessDenied;
        }
        break;
      }
      case NvmeOpcode::flush:
        device_done = dev_.flush(cpu_free);
        break;
    }

    if (cpl.status != NvmeStatus::success)
        errors_.add();
    cpl.completedAt = device_done + cfg_.completionCost;
    auto slot = std::upper_bound(inflight_.begin(), inflight_.end(),
                                 cpl.completedAt);
    inflight_.insert(slot, cpl.completedAt);
    if (tracer_) {
        tracer_->phase("doorbell", now, cpu_free);
        if (device_done > cpu_free)
            tracer_->phase("exec", cpu_free, device_done);
        tracer_->phase("completion", device_done, cpl.completedAt);
        tracer_->endSpan(sp, cpl.completedAt);
    }
    insertCompletion(cpl);
    return cpu_free;
}

std::optional<NvmeCompletion>
NvmeQueuePair::poll(sim::Tick now)
{
    if (cq_.empty() || cq_.front().completedAt > now)
        return std::nullopt;
    NvmeCompletion cpl = cq_.front();
    cq_.pop_front();
    completed_.add();
    return cpl;
}

NvmeCompletion
NvmeQueuePair::waitFor(sim::Tick now, std::uint16_t cid)
{
    auto it = std::find_if(cq_.begin(), cq_.end(),
                           [cid](const NvmeCompletion &c) {
                               return c.cid == cid;
                           });
    if (it == cq_.end())
        sim::fatal("NVMe waitFor: cid ", cid, " is not in flight");
    NvmeCompletion cpl = *it;
    cq_.erase(it);
    completed_.add();
    if (cpl.completedAt < now)
        cpl.completedAt = now; // already done; caller sees no wait
    return cpl;
}

} // namespace bssd::ssd
