#include "workload/linkbench.hh"

namespace bssd::workload
{

namespace
{

/** Cumulative per-mille thresholds matching the published mix. */
struct MixEntry
{
    LinkOp op;
    std::uint32_t cumulative; // out of 1000
};

constexpr MixEntry mix[] = {
    {LinkOp::getNode, 129},     {LinkOp::addNode, 155},
    {LinkOp::updateNode, 229},  {LinkOp::deleteNode, 239},
    {LinkOp::getLink, 244},     {LinkOp::getLinkList, 751},
    {LinkOp::countLinks, 800},  {LinkOp::addLink, 890},
    {LinkOp::deleteLink, 920},  {LinkOp::updateLink, 1000},
};

} // namespace

bool
isReadOp(LinkOp op)
{
    switch (op) {
      case LinkOp::getNode:
      case LinkOp::getLink:
      case LinkOp::getLinkList:
      case LinkOp::countLinks:
        return true;
      default:
        return false;
    }
}

Linkbench::Linkbench(const LinkbenchConfig &cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed), nodeDist_(cfg.nodeCount, cfg.gamma)
{
}

std::vector<std::uint8_t>
Linkbench::makePayload()
{
    std::vector<std::uint8_t> p(cfg_.payloadBytes);
    for (auto &b : p)
        b = static_cast<std::uint8_t>(rng_.next());
    return p;
}

LinkRequest
Linkbench::next()
{
    LinkRequest req;
    std::uint64_t roll = rng_.nextBelow(1000);
    req.op = LinkOp::updateLink;
    for (const auto &m : mix) {
        if (roll < m.cumulative) {
            req.op = m.op;
            break;
        }
    }
    req.id1 = nodeDist_.sample(rng_);
    req.type = static_cast<std::uint32_t>(
        rng_.nextBelow(cfg_.linkTypes));
    req.id2 = nodeDist_.sample(rng_);
    if (!isReadOp(req.op) && req.op != LinkOp::deleteNode &&
        req.op != LinkOp::deleteLink) {
        req.payload = makePayload();
    }
    return req;
}

} // namespace bssd::workload
