#include "workload/ycsb.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace bssd::workload
{

YcsbConfig
ycsbWorkloadA(std::uint32_t payload_bytes)
{
    YcsbConfig c;
    c.payloadBytes = payload_bytes;
    c.readPerMille = 500;
    c.updatePerMille = 500;
    return c;
}

YcsbConfig
ycsbWorkloadB(std::uint32_t payload_bytes)
{
    YcsbConfig c;
    c.payloadBytes = payload_bytes;
    c.readPerMille = 950;
    c.updatePerMille = 50;
    return c;
}

Ycsb::Ycsb(const YcsbConfig &cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed), keyDist_(cfg.recordCount, cfg.zipfTheta)
{
    if (cfg_.readPerMille + cfg_.updatePerMille > 1000)
        sim::fatal("YCSB mix exceeds 100%");
}

std::string
Ycsb::keyOf(std::uint64_t i)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "user%010llu",
                  static_cast<unsigned long long>(i));
    return buf;
}

YcsbRequest
Ycsb::next()
{
    YcsbRequest req;
    req.key = keyOf(keyDist_.sample(rng_));
    std::uint64_t roll = rng_.nextBelow(1000);
    if (roll < cfg_.readPerMille) {
        req.kind = YcsbRequest::Kind::read;
    } else if (roll < cfg_.readPerMille + cfg_.updatePerMille) {
        req.kind = YcsbRequest::Kind::update;
        req.value.resize(cfg_.payloadBytes);
        for (auto &b : req.value)
            b = static_cast<std::uint8_t>(rng_.next());
    } else {
        req.kind = YcsbRequest::Kind::insert;
        req.value.resize(cfg_.payloadBytes);
        for (auto &b : req.value)
            b = static_cast<std::uint8_t>(rng_.next());
    }
    return req;
}

} // namespace bssd::workload
