/**
 * @file
 * Closed-loop benchmark runner: binds a workload generator to an
 * engine and drives N logical clients to a simulated-time horizon.
 * Every application-level number in EXPERIMENTS.md comes from here.
 */

#ifndef BSSD_WORKLOAD_RUNNER_HH
#define BSSD_WORKLOAD_RUNNER_HH

#include <cstdint>

#include "db/minipg/minipg.hh"
#include "db/miniredis/miniredis.hh"
#include "db/minirocks/minirocks.hh"
#include "sim/client.hh"
#include "workload/linkbench.hh"
#include "workload/ycsb.hh"

namespace bssd::workload
{

/** Outcome of one measured run. */
struct RunResult
{
    std::uint64_t ops = 0;
    double opsPerSec = 0.0;
    double meanLatencyUs = 0.0;
    double p99LatencyUs = 0.0;
};

/**
 * Run Linkbench against minipg with @p clients closed-loop clients
 * for @p horizon of simulated time.
 */
RunResult runLinkbenchOnPg(db::minipg::MiniPg &pg,
                           const LinkbenchConfig &cfg,
                           unsigned clients, sim::Tick horizon,
                           std::uint64_t seed);

/**
 * Load @p count YCSB records into minirocks (setup phase).
 * @return simulated completion time of the load; pass it as the
 *         measurement start so the load does not pollute the run.
 */
sim::Tick loadRocks(db::minirocks::MiniRocks &db, const YcsbConfig &cfg,
                    std::uint64_t count);

/** Run YCSB against minirocks over [startAt, startAt + duration). */
RunResult runYcsbOnRocks(db::minirocks::MiniRocks &db,
                         const YcsbConfig &cfg, unsigned clients,
                         sim::Tick duration, std::uint64_t seed,
                         sim::Tick startAt = 0);

/** Load @p count YCSB records into miniredis (setup phase). */
sim::Tick loadRedis(db::miniredis::MiniRedis &db, const YcsbConfig &cfg,
                    std::uint64_t count);

/** Run YCSB against miniredis (single-threaded: one client). */
RunResult runYcsbOnRedis(db::miniredis::MiniRedis &db,
                         const YcsbConfig &cfg, sim::Tick duration,
                         std::uint64_t seed, sim::Tick startAt = 0);

} // namespace bssd::workload

#endif // BSSD_WORKLOAD_RUNNER_HH
