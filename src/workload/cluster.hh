/**
 * @file
 * Sharded key-value cluster scenario on the parallel engine.
 *
 * One host domain runs a ShardRouter; N shard domains each own a full
 * store × WAL × device rig (miniredis over a BA-WAL on a 2B-SSD, or
 * over a block WAL with fsync) — the multi-device scenario ROADMAP
 * item 1 sketches, and the workload the parallel-engine benchmarks
 * and determinism tests drive. Every shard is self-contained (own
 * device, own RNG-free service path, own tracer), so the only
 * cross-domain traffic is the router's request/completion mailbox —
 * which is what makes the run bit-identical at any thread count.
 */

#ifndef BSSD_WORKLOAD_CLUSTER_HH
#define BSSD_WORKLOAD_CLUSTER_HH

#include <cstdint>
#include <string>

#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace bssd::workload
{

/** Cluster topology, rig flavour and workload shape. */
struct ClusterConfig
{
    /** Shard (device/rig) domains; the host router is one more. */
    unsigned shards = 4;
    /** Shard WAL flavour. */
    enum class Wal : std::uint8_t
    {
        ba,   ///< BA-WAL on a 2B-SSD (single-buffered, like Redis)
        block ///< page-aligned block WAL with fsync
    } wal = Wal::ba;
    /**
     * GC preset: shrink each shard's array (6 blocks/die) and run
     * incremental background GC with partial relocation steps, so the
     * op stream wraps the WAL region and keeps GC continuously active.
     */
    bool gc = true;
    /** Engine worker threads (1 = serial reference). */
    unsigned engineThreads = 1;

    /** @name Router workload (see host::RouterConfig) @{ */
    std::uint32_t opsPerCycle = 64;
    std::uint64_t cycles = 48;
    sim::Tick meanCycleGap = sim::usOf(400);
    double setFraction = 0.7;
    std::uint64_t keySpace = 512;
    std::uint32_t valueBytes = 96;
    std::uint64_t seed = 1;
    /** @} */
};

/** Everything a cluster run produces, determinism-comparable. */
struct ClusterResult
{
    std::uint64_t opsRouted = 0;
    std::uint64_t opsCompleted = 0;
    std::uint64_t batchesDispatched = 0;
    std::uint64_t batchesCompleted = 0;
    /** Engine events fired, barrier rounds, mailbox messages. */
    std::uint64_t eventsFired = 0;
    std::uint64_t rounds = 0;
    std::uint64_t messages = 0;
    /** Simulated time the run needed to drain (ticks). */
    sim::Tick horizon = 0;
    /** Host-observed batch latency percentiles (ticks). */
    std::uint64_t batchP50 = 0;
    std::uint64_t batchP99 = 0;
    /**
     * Digest of final cluster state: every shard's store contents
     * (sorted-key FNV) plus its command/IO counters, folded in shard
     * order. Equal digests mean equal stored data.
     */
    std::uint64_t stateDigest = 0;
    /** Merged metrics snapshot (JSON, deterministic row order). */
    std::string metricsJson;
};

/**
 * Build the cluster, run it until the router drains, and tear it
 * down. When @p trace is non-null each shard records into its own
 * tracer and the per-domain traces are appended to @p trace in
 * domain-id order afterwards (byte-identical across thread counts).
 */
ClusterResult runCluster(const ClusterConfig &cfg,
                         sim::Tracer *trace = nullptr);

} // namespace bssd::workload

#endif // BSSD_WORKLOAD_CLUSTER_HH
