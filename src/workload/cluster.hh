/**
 * @file
 * Sharded key-value cluster scenario on the parallel engine.
 *
 * A thin, result-oriented wrapper over the first-class
 * cluster::Cluster subsystem (src/cluster): one host domain runs a
 * ShardRouter; N shard domains each own a full store × WAL × device
 * rig (miniredis or minipg over a BA-WAL on a 2B-SSD, a block WAL
 * with fsync, or a BA-WAL replicated to a follower device). The
 * benches, sweep harness, and determinism tests all drive cluster
 * runs through this one function, so every caller gets the same
 * construction, the same drain loop, and the same built-in
 * consistency check.
 */

#ifndef BSSD_WORKLOAD_CLUSTER_HH
#define BSSD_WORKLOAD_CLUSTER_HH

#include <cstdint>
#include <string>

#include "sim/client.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace bssd::workload
{

/** Cluster topology, rig flavour and workload shape. */
struct ClusterConfig
{
    /** Shard (device/rig) domains; the host router is one more. */
    unsigned shards = 4;
    /** Store engine every shard runs. */
    enum class Engine : std::uint8_t
    {
        redis, ///< miniredis, appendfsync=always
        pg     ///< minipg, XLOG + group commit
    } engine = Engine::redis;
    /** Shard WAL flavour. */
    enum class Wal : std::uint8_t
    {
        ba,    ///< BA-WAL on a 2B-SSD (single-buffered, like Redis)
        block, ///< page-aligned block WAL with fsync
        baRepl ///< BA-WAL replicated to a follower 2B-SSD
    } wal = Wal::ba;
    /**
     * GC preset: shrink each shard's array (6 blocks/die) and run
     * incremental background GC with partial relocation steps, so the
     * op stream wraps the WAL region and keeps GC continuously active.
     */
    bool gc = true;
    /** Key-hash or contiguous-range routing (cluster::Sharding). */
    bool rangeSharded = false;
    /** Engine worker threads (1 = serial reference). */
    unsigned engineThreads = 1;

    /** @name Router workload (see host::RouterConfig) @{ */
    std::uint32_t opsPerCycle = 64;
    std::uint64_t cycles = 48;
    /** Open-loop arrival process of cycle starts (Poisson default,
     *  meanGap 400 us; set kind = bursty for clustered arrivals). */
    sim::ArrivalSpec arrival;
    double setFraction = 0.7;
    std::uint64_t keySpace = 512;
    std::uint32_t valueBytes = 96;
    std::uint64_t seed = 1;
    /** Host NVMe-style I/O queue pairs per shard. */
    std::uint16_t nvmeQueuePairs = 1;
    /** Batches each pair admits; 0 = unbounded (no queue gating). */
    std::uint16_t nvmeQueueDepth = 0;
    /** @} */

    /** @name Online rebalance (0 = none) @{ */
    std::uint64_t rebalanceAtCycle = 0;
    /** Moved interval of the routing space in 1/256ths. */
    std::uint32_t moveBegin256 = 0;
    std::uint32_t moveEnd256 = 64;
    unsigned moveTo = 0;
    /** @} */
};

/** Everything a cluster run produces, determinism-comparable. */
struct ClusterResult
{
    std::uint64_t opsRouted = 0;
    std::uint64_t opsCompleted = 0;
    std::uint64_t batchesDispatched = 0;
    std::uint64_t batchesCompleted = 0;
    /** Engine events fired, barrier rounds, mailbox messages. */
    std::uint64_t eventsFired = 0;
    std::uint64_t rounds = 0;
    std::uint64_t messages = 0;
    /** Simulated time the run needed to drain (ticks). */
    sim::Tick horizon = 0;
    /** Host-observed batch latency percentiles (ticks). */
    std::uint64_t batchP50 = 0;
    std::uint64_t batchP99 = 0;
    /** Host-observed per-op latency percentiles (ticks). */
    std::uint64_t opP50 = 0;
    std::uint64_t opP99 = 0;
    std::uint64_t opP999 = 0;
    /** Distinct keys ("simulated users") the run touched. */
    std::uint64_t usersTouched = 0;
    /** Range moves completed / keys they physically copied. */
    std::uint64_t rebalances = 0;
    std::uint64_t movedKeys = 0;
    /**
     * Digest of final cluster state: every shard's store contents
     * (sorted-key FNV) plus its command/IO counters, folded in shard
     * order, plus the shard-map version. Equal digests mean equal
     * stored data.
     */
    std::uint64_t stateDigest = 0;
    /** Merged metrics snapshot (JSON, deterministic row order). */
    std::string metricsJson;
    /** Per-shard SLO time series (JSON, deterministic column order:
     *  host gauges first, then shards by id). */
    std::string sloSeriesJson;
};

/**
 * Build the cluster, run it until the router drains (and any
 * scheduled rebalance flips), verify fleet-wide consistency, and
 * tear it down. When @p trace is non-null each shard records into
 * its own tracer and the per-domain traces are appended to @p trace
 * in domain-id order afterwards (byte-identical across thread
 * counts).
 */
ClusterResult runCluster(const ClusterConfig &cfg,
                         sim::Tracer *trace = nullptr);

} // namespace bssd::workload

#endif // BSSD_WORKLOAD_CLUSTER_HH
