/**
 * @file
 * FIO-like micro I/O workload generator.
 *
 * The paper uses "Linux FIO" for its device-level measurements
 * (Section V-B). This is the equivalent for the simulated devices: a
 * job description (pattern, block size, queue depth, read fraction),
 * driven through the NVMe queue-pair layer, reporting IOPS, bandwidth
 * and a latency distribution.
 */

#ifndef BSSD_WORKLOAD_FIO_HH
#define BSSD_WORKLOAD_FIO_HH

#include <cstdint>

#include "sim/stats.hh"
#include "sim/ticks.hh"
#include "ssd/nvme_multi_queue.hh"
#include "ssd/ssd_device.hh"

namespace bssd::workload
{

/** Access pattern of a FIO job. */
enum class FioPattern : std::uint8_t
{
    seqRead,
    seqWrite,
    randRead,
    randWrite,
    randRw, ///< mixed, readFraction decides
};

/** One job description (a [job] section in fio terms). */
struct FioJob
{
    FioPattern pattern = FioPattern::randRead;
    /** Request size in bytes. */
    std::uint32_t blockSize = 4096;
    /** Outstanding commands (total, across all queue pairs). */
    std::uint16_t queueDepth = 1;
    /** NVMe I/O queue pairs the job submits through (round-robin). */
    std::uint16_t queues = 1;
    /** Number of I/Os to issue. */
    std::uint32_t ios = 1024;
    /** Region of the device the job touches. */
    std::uint64_t regionOffset = 0;
    std::uint64_t regionBytes = 256 * sim::MiB;
    /** Read share for randRw, in per mille. */
    std::uint32_t readPerMille = 500;
    /** Pre-write the region so reads hit programmed pages. */
    bool precondition = true;
    std::uint64_t seed = 1;
};

/** Job outcome. */
struct FioResult
{
    double iops = 0.0;
    double bandwidthGBps = 0.0;
    double meanLatencyUs = 0.0;
    double p99LatencyUs = 0.0;
    std::uint64_t completed = 0;
};

/**
 * Run @p job against @p dev through the NVMe multi-queue frontend
 * (job.queues pairs, round-robin arbitration).
 * Fully deterministic for a given job description.
 */
FioResult runFio(ssd::SsdDevice &dev, const FioJob &job);

} // namespace bssd::workload

#endif // BSSD_WORKLOAD_FIO_HH
