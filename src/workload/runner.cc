#include "workload/runner.hh"

#include <memory>

#include "sim/ticks.hh"

namespace bssd::workload
{

namespace
{

RunResult
summarize(const sim::ClosedLoopDriver &driver, std::uint64_t ops)
{
    RunResult r;
    r.ops = ops;
    r.opsPerSec = driver.throughputOpsPerSec();
    r.meanLatencyUs = driver.latency().mean() / 1e3;
    r.p99LatencyUs =
        static_cast<double>(driver.latency().percentile(99)) / 1e3;
    return r;
}

} // namespace

RunResult
runLinkbenchOnPg(db::minipg::MiniPg &pg, const LinkbenchConfig &cfg,
                 unsigned clients, sim::Tick horizon, std::uint64_t seed)
{
    sim::ClosedLoopDriver driver;
    std::vector<std::shared_ptr<Linkbench>> gens;
    for (unsigned c = 0; c < clients; ++c) {
        auto gen = std::make_shared<Linkbench>(cfg, seed + c * 7919);
        gens.push_back(gen);
        driver.addClient([gen, &pg](sim::Clock &clock) {
            LinkRequest req = gen->next();
            sim::Tick t = clock.now();
            using enum LinkOp;
            db::minipg::LinkKey key{req.id1, req.type, req.id2};
            switch (req.op) {
              case getNode:
                t = pg.getNode(t, req.id1);
                break;
              case addNode:
              case updateNode:
                t = pg.updateNode(t, req.id1, req.payload);
                break;
              case deleteNode:
                t = pg.deleteNode(t, req.id1);
                break;
              case getLink:
                t = pg.getLink(t, key);
                break;
              case getLinkList:
                t = pg.getLinkList(t, req.id1, req.type);
                break;
              case countLinks:
                t = pg.countLinks(t, req.id1, req.type);
                break;
              case addLink:
              case updateLink:
                t = pg.addLink(t, key, req.payload);
                break;
              case deleteLink:
                t = pg.deleteLink(t, key);
                break;
            }
            clock.advanceTo(t);
        });
    }
    auto ops = driver.run(horizon);
    return summarize(driver, ops);
}

sim::Tick
loadRocks(db::minirocks::MiniRocks &db, const YcsbConfig &cfg,
          std::uint64_t count)
{
    std::vector<std::uint8_t> value(cfg.payloadBytes, 0x5a);
    sim::Tick t = 0;
    for (std::uint64_t i = 0; i < count; ++i)
        t = db.put(t, Ycsb::keyOf(i), value);
    return t;
}

RunResult
runYcsbOnRocks(db::minirocks::MiniRocks &db, const YcsbConfig &cfg,
               unsigned clients, sim::Tick duration, std::uint64_t seed,
               sim::Tick startAt)
{
    sim::ClosedLoopDriver driver;
    driver.setStartTime(startAt);
    for (unsigned c = 0; c < clients; ++c) {
        auto gen = std::make_shared<Ycsb>(cfg, seed + c * 104729);
        driver.addClient([gen, &db](sim::Clock &clock) {
            YcsbRequest req = gen->next();
            sim::Tick t = clock.now();
            if (req.kind == YcsbRequest::Kind::read)
                t = db.get(t, req.key);
            else
                t = db.put(t, req.key, req.value);
            clock.advanceTo(t);
        });
    }
    auto ops = driver.run(startAt + duration);
    return summarize(driver, ops);
}

sim::Tick
loadRedis(db::miniredis::MiniRedis &db, const YcsbConfig &cfg,
          std::uint64_t count)
{
    std::vector<std::uint8_t> value(cfg.payloadBytes, 0x5a);
    sim::Tick t = 0;
    for (std::uint64_t i = 0; i < count; ++i)
        t = db.set(t, Ycsb::keyOf(i), value);
    return t;
}

RunResult
runYcsbOnRedis(db::miniredis::MiniRedis &db, const YcsbConfig &cfg,
               sim::Tick duration, std::uint64_t seed, sim::Tick startAt)
{
    sim::ClosedLoopDriver driver;
    driver.setStartTime(startAt);
    auto gen = std::make_shared<Ycsb>(cfg, seed);
    driver.addClient([gen, &db](sim::Clock &clock) {
        YcsbRequest req = gen->next();
        sim::Tick t = clock.now();
        if (req.kind == YcsbRequest::Kind::read)
            t = db.get(t, req.key);
        else
            t = db.set(t, req.key, req.value);
        clock.advanceTo(t);
    });
    auto ops = driver.run(startAt + duration);
    return summarize(driver, ops);
}

} // namespace bssd::workload
