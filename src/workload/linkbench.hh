/**
 * @file
 * Linkbench-like workload generator (Armstrong et al., SIGMOD'13),
 * the paper's PostgreSQL workload: Facebook social-graph operations
 * with a power-law access skew and a ~70/30 read/write mix.
 */

#ifndef BSSD_WORKLOAD_LINKBENCH_HH
#define BSSD_WORKLOAD_LINKBENCH_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace bssd::workload
{

/** Operation kinds with the published Linkbench mix. */
enum class LinkOp : std::uint8_t
{
    getNode,     ///< 12.9 %
    addNode,     ///<  2.6 %
    updateNode,  ///<  7.4 %
    deleteNode,  ///<  1.0 %
    getLink,     ///<  0.5 %
    getLinkList, ///< 50.7 %
    countLinks,  ///<  4.9 %
    addLink,     ///<  9.0 %
    deleteLink,  ///<  3.0 %
    updateLink,  ///<  8.0 %
};

/** True for the operations that only read. */
bool isReadOp(LinkOp op);

/** One generated request. */
struct LinkRequest
{
    LinkOp op;
    std::uint64_t id1 = 0;
    std::uint32_t type = 0;
    std::uint64_t id2 = 0;
    std::vector<std::uint8_t> payload;
};

/** Generator parameters. */
struct LinkbenchConfig
{
    std::uint64_t nodeCount = 100'000;
    /** Power-law skew of node popularity. */
    double gamma = 0.8;
    /** Link payload bytes (Linkbench data column, ~128 B median). */
    std::uint32_t payloadBytes = 128;
    std::uint32_t linkTypes = 4;
};

/** Deterministic request stream. */
class Linkbench
{
  public:
    Linkbench(const LinkbenchConfig &cfg, std::uint64_t seed);

    /** Generate the next request. */
    LinkRequest next();

    const LinkbenchConfig &config() const { return cfg_; }

  private:
    LinkbenchConfig cfg_;
    sim::Rng rng_;
    sim::PowerLaw nodeDist_;

    std::vector<std::uint8_t> makePayload();
};

} // namespace bssd::workload

#endif // BSSD_WORKLOAD_LINKBENCH_HH
