#include "workload/cluster.hh"

#include "cluster/cluster.hh"
#include "sim/stats.hh"

namespace bssd::workload
{

namespace
{

cluster::ClusterConfig
toClusterConfig(const ClusterConfig &cfg)
{
    cluster::ClusterConfig c;
    c.shards = cfg.shards;
    c.engine = cfg.engine == ClusterConfig::Engine::redis
                   ? cluster::ClusterConfig::Engine::redis
                   : cluster::ClusterConfig::Engine::pg;
    switch (cfg.wal) {
      case ClusterConfig::Wal::ba:
        c.wal = cluster::ClusterConfig::Wal::ba;
        break;
      case ClusterConfig::Wal::block:
        c.wal = cluster::ClusterConfig::Wal::block;
        break;
      case ClusterConfig::Wal::baRepl:
        c.wal = cluster::ClusterConfig::Wal::baRepl;
        break;
    }
    c.gc = cfg.gc;
    c.sharding = cfg.rangeSharded ? cluster::Sharding::range
                                  : cluster::Sharding::hash;
    c.engineThreads = cfg.engineThreads;
    c.opsPerCycle = cfg.opsPerCycle;
    c.cycles = cfg.cycles;
    c.arrival = cfg.arrival;
    c.setFraction = cfg.setFraction;
    c.keySpace = cfg.keySpace;
    c.valueBytes = cfg.valueBytes;
    c.seed = cfg.seed;
    c.queuePairs = cfg.nvmeQueuePairs;
    c.queueDepth = cfg.nvmeQueueDepth;
    c.rebalanceAtCycle = cfg.rebalanceAtCycle;
    c.moveBegin256 = cfg.moveBegin256;
    c.moveEnd256 = cfg.moveEnd256;
    c.moveTo = cfg.moveTo;
    return c;
}

} // namespace

ClusterResult
runCluster(const ClusterConfig &cfg, sim::Tracer *trace)
{
    cluster::Cluster c(toClusterConfig(cfg), trace);
    c.run();
    // Every cluster run doubles as a consistency check: ownership and
    // payload bytes must line up with the (possibly rebalanced) map.
    c.verifyConsistency();

    ClusterResult res;
    const host::ShardRouter &router = c.router();
    res.opsRouted = router.opsRouted();
    res.opsCompleted = router.opsCompleted();
    res.batchesDispatched = router.batchesDispatched();
    res.batchesCompleted = router.batchesCompleted();
    res.eventsFired = c.engine().eventsFired();
    res.rounds = c.engine().rounds();
    res.messages = c.engine().messagesDelivered();
    res.horizon = c.horizon();
    res.batchP50 = router.batchLatency().percentile(50.0);
    res.batchP99 = router.batchLatency().percentile(99.0);
    res.opP50 = router.opLatency().percentile(50.0);
    res.opP99 = router.opLatency().percentile(99.0);
    res.opP999 = router.opLatency().percentile(99.9);
    res.usersTouched = router.usersTouched();
    res.rebalances = c.rebalancesDone();
    res.movedKeys = c.movedKeys();
    res.stateDigest = c.stateDigest();
    res.metricsJson = c.metricsJson();
    res.sloSeriesJson = c.sloJson();
    return res;
}

} // namespace bssd::workload
