#include "workload/cluster.hh"

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ba/two_b_ssd.hh"
#include "db/miniredis/miniredis.hh"
#include "host/shard_router.hh"
#include "sim/domain.hh"
#include "sim/engine.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "ssd/nvme_queue.hh"
#include "ssd/ssd_device.hh"
#include "wal/ba_wal.hh"
#include "wal/block_wal.hh"

namespace bssd::workload
{

namespace
{

/** One shard: a store × WAL × device rig living in one domain. */
struct Shard
{
    std::unique_ptr<ba::TwoBSsd> twoB;
    std::unique_ptr<ssd::SsdDevice> blockDev;
    std::unique_ptr<wal::LogDevice> log;
    std::unique_ptr<db::miniredis::MiniRedis> redis;
    sim::Tracer tracer;
    /** Shard-local service clock: batches queue behind each other. */
    sim::Tick clock = 0;

    sim::Domain &domain()
    {
        return twoB ? twoB->domain() : blockDev->domain();
    }

    ssd::SsdDevice &device()
    {
        return twoB ? twoB->device() : *blockDev;
    }
};

/** Mirror of the GC-campaign rig preset (tests/support/rig.hh). */
ssd::SsdConfig
shardDeviceConfig(const ClusterConfig &cfg, unsigned shard)
{
    ssd::SsdConfig dev = ssd::SsdConfig::tiny();
    dev.name = "shard" + std::to_string(shard);
    if (cfg.gc) {
        dev.nandCfg.geometry.blocksPerDie = 6;
        dev.ftlCfg.backgroundGc = true;
        dev.ftlCfg.gcStepPages = 3;
        dev.nandCfg.sched.readPriority = true;
        dev.nandCfg.sched.eraseSuspend = true;
    }
    return dev;
}

std::unique_ptr<Shard>
makeShard(const ClusterConfig &cfg, unsigned idx)
{
    auto shard = std::make_unique<Shard>();
    const std::uint64_t region =
        cfg.gc ? 128 * sim::KiB : sim::MiB;
    const std::uint64_t half = cfg.gc ? 16 * sim::KiB : 32 * sim::KiB;
    if (cfg.wal == ClusterConfig::Wal::ba) {
        ba::BaConfig bc;
        bc.bufferBytes = cfg.gc ? 64 * sim::KiB : 128 * sim::KiB;
        shard->twoB = std::make_unique<ba::TwoBSsd>(
            shardDeviceConfig(cfg, idx), bc);
        wal::BaWalConfig wc;
        wc.regionBytes = region;
        wc.halfBytes = half;
        // Single-buffered, respecting Redis's single-threaded design
        // (Section IV-B).
        wc.doubleBuffer = false;
        shard->log = std::make_unique<wal::BaWal>(*shard->twoB, wc);
    } else {
        shard->blockDev = std::make_unique<ssd::SsdDevice>(
            shardDeviceConfig(cfg, idx));
        wal::BlockWalConfig wc;
        wc.regionBytes = region;
        shard->log =
            std::make_unique<wal::BlockWal>(*shard->blockDev, wc);
    }
    shard->redis = std::make_unique<db::miniredis::MiniRedis>(
        *shard->log);
    return shard;
}

/** Deterministic value payload for a SET. */
std::vector<std::uint8_t>
valueFor(const host::RouterOp &op)
{
    std::vector<std::uint8_t> v(op.valueBytes);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<std::uint8_t>(op.key + i);
    return v;
}

} // namespace

ClusterResult
runCluster(const ClusterConfig &cfg, sim::Tracer *trace)
{
    if (cfg.shards == 0)
        sim::panic("runCluster: at least one shard required");

    sim::ParallelEngine engine(cfg.engineThreads);
    sim::Domain hostDom("host");
    engine.add(hostDom);

    std::vector<std::unique_ptr<Shard>> shards;
    std::vector<sim::Domain *> shardDoms;
    shards.reserve(cfg.shards);
    for (unsigned s = 0; s < cfg.shards; ++s) {
        shards.push_back(makeShard(cfg, s));
        Shard &sh = *shards.back();
        engine.add(sh.domain());
        shardDoms.push_back(&sh.domain());
        if (trace) {
            if (sh.twoB)
                sh.twoB->installTracer(&sh.tracer);
            else
                sh.blockDev->setTracer(&sh.tracer);
            sh.log->setTracer(&sh.tracer);
        }
    }

    host::RouterConfig rc;
    rc.opsPerCycle = cfg.opsPerCycle;
    rc.cycles = cfg.cycles;
    rc.meanCycleGap = cfg.meanCycleGap;
    rc.setFraction = cfg.setFraction;
    rc.keySpace = cfg.keySpace;
    rc.valueBytes = cfg.valueBytes;
    rc.seed = cfg.seed;
    // The channel contract: requests ride a posted doorbell write,
    // completions an interrupt; the lookaheads are exactly those
    // minimum latencies.
    rc.requestLatency = shards.front()
                            ->device()
                            .config()
                            .pcieCfg.minPostedLatency();
    rc.completionLatency = ssd::NvmeQueueConfig{}.completionCost;
    for (sim::Domain *d : shardDoms) {
        engine.connect(hostDom, *d, rc.requestLatency);
        engine.connect(*d, hostDom, rc.completionLatency);
    }

    host::ShardRouter router(
        rc, hostDom, shardDoms,
        [&shards](unsigned s, sim::Tick start,
                  const std::vector<host::RouterOp> &ops) {
            Shard &sh = *shards[s];
            sim::Tick t = std::max(start, sh.clock);
            for (const host::RouterOp &op : ops) {
                const std::string key =
                    "k" + std::to_string(op.key);
                if (op.kind == host::RouterOp::Kind::set)
                    t = sh.redis->set(t, key, valueFor(op));
                else
                    t = sh.redis->get(t, key);
            }
            sh.clock = t;
            return t;
        });
    router.start();

    // Run in fixed chunks until the router drains; the chunk schedule
    // is part of the deterministic contract (every thread count sees
    // the same sequence of run() horizons).
    const sim::Tick chunk =
        cfg.meanCycleGap * (cfg.cycles + 1) + sim::msOf(5);
    sim::Tick horizon = 0;
    for (int tries = 0; !router.done(); ++tries) {
        if (tries > 64)
            sim::panic("runCluster: router failed to drain");
        horizon += chunk;
        engine.run(horizon);
    }

    ClusterResult res;
    res.opsRouted = router.opsRouted();
    res.opsCompleted = router.opsCompleted();
    res.batchesDispatched = router.batchesDispatched();
    res.batchesCompleted = router.batchesCompleted();
    res.eventsFired = engine.eventsFired();
    res.rounds = engine.rounds();
    res.messages = engine.messagesDelivered();
    res.horizon = horizon;
    res.batchP50 = router.batchLatency().percentile(50.0);
    res.batchP99 = router.batchLatency().percentile(99.0);

    // Fold final store contents and IO counters in shard order.
    std::uint64_t h = 14695981039346656037ull; // FNV-1a offset basis
    auto mix = [&h](std::uint64_t x) {
        for (int i = 0; i < 8; ++i) {
            h ^= (x >> (8 * i)) & 0xffu;
            h *= 1099511628211ull; // FNV-1a prime
        }
    };
    sim::MetricRegistry reg;
    for (unsigned s = 0; s < cfg.shards; ++s) {
        Shard &sh = *shards[s];
        mix(sh.redis->contentHash());
        mix(sh.redis->commandsProcessed());
        mix(sh.redis->keys());
        mix(sh.device().readsServed());
        mix(sh.device().writesServed());
        const std::string prefix = "shard" + std::to_string(s);
        if (sh.twoB)
            sh.twoB->registerMetrics(reg, prefix + ".ba");
        else
            sh.blockDev->registerMetrics(reg, prefix + ".ssd");
        sh.log->registerMetrics(reg, prefix + ".wal");
    }
    res.stateDigest = h;
    std::ostringstream metrics;
    reg.writeJson(metrics);
    res.metricsJson = metrics.str();

    if (trace) {
        for (const auto &sh : shards)
            trace->append(sh->tracer);
    }
    return res;
}

} // namespace bssd::workload
