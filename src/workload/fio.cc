#include "workload/fio.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace bssd::workload
{

namespace
{

bool
isRead(const FioJob &job, sim::Rng &rng)
{
    switch (job.pattern) {
      case FioPattern::seqRead:
      case FioPattern::randRead:
        return true;
      case FioPattern::seqWrite:
      case FioPattern::randWrite:
        return false;
      case FioPattern::randRw:
        return rng.nextBelow(1000) < job.readPerMille;
    }
    return true;
}

bool
isSequential(const FioJob &job)
{
    return job.pattern == FioPattern::seqRead ||
           job.pattern == FioPattern::seqWrite;
}

} // namespace

FioResult
runFio(ssd::SsdDevice &dev, const FioJob &job)
{
    if (job.blockSize == 0 || job.ios == 0)
        sim::fatal("FIO job needs a block size and an I/O count");
    if (job.regionBytes < job.blockSize)
        sim::fatal("FIO region smaller than one request");
    if (job.regionOffset + job.regionBytes > dev.capacityBytes())
        sim::fatal("FIO region exceeds device capacity");

    const std::uint64_t slots = job.regionBytes / job.blockSize;
    sim::Rng rng(job.seed);

    sim::Tick t = 0;
    if (job.precondition) {
        // Fill the region sequentially so reads hit programmed pages.
        std::vector<std::uint8_t> chunk(
            std::min<std::uint64_t>(job.regionBytes, 4 * sim::MiB),
            0xf1);
        for (std::uint64_t off = 0; off < job.regionBytes;
             off += chunk.size()) {
            std::uint64_t n =
                std::min<std::uint64_t>(chunk.size(),
                                        job.regionBytes - off);
            t = dev.blockWrite(t, job.regionOffset + off,
                               std::span<const std::uint8_t>(
                                   chunk.data(), n))
                    .end;
        }
        // Let the write buffer destage fully before measuring: the
        // fill left die-calendar reservations that reads would
        // otherwise queue behind (1 GB/s is a conservative bound on
        // every preset's drain rate).
        t += job.regionBytes + sim::msOf(5);
    }

    const std::uint16_t queues = std::max<std::uint16_t>(1, job.queues);
    ssd::NvmeQueueConfig qcfg;
    // Per-pair depth splits the job's total so the fleet of pairs
    // admits exactly queueDepth outstanding commands.
    qcfg.depth = static_cast<std::uint16_t>(
        (job.queueDepth + queues - 1) / queues);
    ssd::NvmeMultiQueue mq(dev, queues, qcfg);

    sim::Distribution lat("fio.lat");
    std::vector<std::uint8_t> wdata(job.blockSize, 0x3f);
    // One read buffer per outstanding slot.
    std::vector<std::vector<std::uint8_t>> rbufs(
        job.queueDepth, std::vector<std::uint8_t>(job.blockSize));
    std::map<std::uint16_t, sim::Tick> issueTime;
    std::deque<std::uint16_t> freeSlots;
    for (std::uint16_t s = 0; s < job.queueDepth; ++s)
        freeSlots.push_back(s);

    const sim::Tick start = t;
    std::uint32_t issued = 0, completed = 0;
    std::uint64_t seq_slot = 0;

    while (completed < job.ios) {
        while (issued < job.ios && !freeSlots.empty()) {
            std::uint16_t slot = freeSlots.front();
            std::uint64_t index = isSequential(job)
                ? (seq_slot++ % slots)
                : rng.nextBelow(slots);
            ssd::NvmeCommand cmd;
            cmd.cid = slot;
            cmd.offset =
                job.regionOffset + index * job.blockSize;
            cmd.length = job.blockSize;
            if (isRead(job, rng)) {
                cmd.opc = ssd::NvmeOpcode::read;
                cmd.readBuf = &rbufs[slot];
            } else {
                cmd.opc = ssd::NvmeOpcode::write;
                cmd.writeData = wdata;
            }
            auto ok = mq.submit(t, cmd);
            if (!ok.has_value())
                break;
            freeSlots.pop_front();
            issueTime[slot] = t;
            t = ok->cpuFree;
            ++issued;
        }
        // Reap the next completion.
        for (;;) {
            auto cpl = mq.poll(t);
            if (cpl.has_value()) {
                ++completed;
                lat.sample(cpl->completedAt - issueTime[cpl->cid]);
                freeSlots.push_back(cpl->cid);
                t = std::max(t, cpl->completedAt);
                break;
            }
            t += sim::nsOf(200); // polling granularity
        }
    }

    FioResult res;
    res.completed = completed;
    const sim::Tick dur = t - start;
    res.iops = completed / sim::toSec(dur);
    res.bandwidthGBps =
        static_cast<double>(std::uint64_t(completed) * job.blockSize) /
        static_cast<double>(dur);
    res.meanLatencyUs = lat.mean() / 1e3;
    res.p99LatencyUs = static_cast<double>(lat.percentile(99)) / 1e3;
    return res;
}

} // namespace bssd::workload
