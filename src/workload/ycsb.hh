/**
 * @file
 * YCSB workload generator (Cooper et al., SoCC'10), the paper's
 * RocksDB/Redis workload. Workload A is the paper's choice: 50 %
 * reads / 50 % updates over a zipfian key popularity, with the value
 * ("payload") size as the swept parameter of Fig. 9.
 */

#ifndef BSSD_WORKLOAD_YCSB_HH
#define BSSD_WORKLOAD_YCSB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"

namespace bssd::workload
{

/** One generated request. */
struct YcsbRequest
{
    enum class Kind : std::uint8_t { read, update, insert, scan };
    Kind kind = Kind::read;
    std::string key;
    std::vector<std::uint8_t> value; // update/insert only
};

/** Generator parameters. */
struct YcsbConfig
{
    std::uint64_t recordCount = 100'000;
    /** Value bytes per record (the paper sweeps this). */
    std::uint32_t payloadBytes = 128;
    double zipfTheta = 0.99;
    /** Read fraction in per mille (workload A: 500). */
    std::uint32_t readPerMille = 500;
    /** Update fraction in per mille (workload A: 500). */
    std::uint32_t updatePerMille = 500;
};

/** Standard workload mixes. */
YcsbConfig ycsbWorkloadA(std::uint32_t payload_bytes);
YcsbConfig ycsbWorkloadB(std::uint32_t payload_bytes);

/** Deterministic request stream. */
class Ycsb
{
  public:
    Ycsb(const YcsbConfig &cfg, std::uint64_t seed);

    YcsbRequest next();

    /** The canonical key for record @p i ("userNNNNNNNN"). */
    static std::string keyOf(std::uint64_t i);

    const YcsbConfig &config() const { return cfg_; }

  private:
    YcsbConfig cfg_;
    sim::Rng rng_;
    sim::Zipfian keyDist_;
};

} // namespace bssd::workload

#endif // BSSD_WORKLOAD_YCSB_HH
