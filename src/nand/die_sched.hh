/**
 * @file
 * Die-level I/O scheduler (DESIGN.md sections 10 and 15).
 *
 * Per-die operation calendars that know what each die is doing. The
 * caller names the die (the FTL's physical address selects it); the
 * scheduler never load-balances. Two mechanisms, both knob-gated
 * (NandSchedConfig) and both deterministic:
 *
 *  - read priority: a host read arriving before a *background*
 *    reservation (GC relocation program or GC erase) has started may
 *    claim its slot; the background operation is pushed back behind
 *    the read. Only the die's tail reservation is preemptible, which
 *    bounds the lookback to one operation and keeps grants O(1).
 *
 *  - erase suspend/resume: a host read arriving while a suspendable
 *    block erase occupies the die parks the erase (suspend latency),
 *    runs, and extends the erase by the read's service time plus a
 *    resume overhead. A per-erase suspension cap bounds starvation.
 *
 * With both knobs off every grant to die d is identical to what a
 * dedicated sim::FifoResource for d would have produced: start at
 * max(ready, free), advance the calendar. That equivalence is asserted
 * by tests/nand/test_die_sched.
 *
 * Determinism: per-rig state only, no randomness, grants depend only
 * on call order - the sweep harness invariant holds unchanged.
 */

#ifndef BSSD_NAND_DIE_SCHED_HH
#define BSSD_NAND_DIE_SCHED_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nand/nand_config.hh"
#include "sim/resource.hh"
#include "sim/ticks.hh"

namespace bssd::nand
{

/**
 * Per-die operation calendars with background-aware scheduling. One
 * instance models all dies of one NAND array.
 */
class DieScheduler
{
  public:
    /** Operation classes the scheduler distinguishes. */
    enum class Op : std::uint8_t { read, program, erase };

    /** What one reservation was granted, plus how it was scheduled. */
    struct Grant
    {
        sim::Interval iv;
        /** The read suspended an in-flight erase on its die. */
        bool suspendedErase = false;
        /** The read claimed the slot of an unstarted background op. */
        bool bypassedBackground = false;
    };

    DieScheduler(std::size_t dies, const NandSchedConfig &cfg,
                 std::string name = "nand.dies");

    /**
     * Reserve die @p die for @p duration ticks, no earlier than
     * @p earliest. @p background marks GC work: it is scheduled FIFO
     * like any other op but becomes preemptible by later host reads
     * (read priority) and, for erases, suspendable (erase suspend).
     */
    Grant reserveOn(std::size_t die, sim::Tick earliest,
                    sim::Tick duration, Op op, bool background = false);

    /** Earliest time any die frees up. */
    sim::Tick nextFree() const;

    std::size_t dies() const { return dies_.size(); }
    sim::Tick busyTime() const { return busy_; }
    std::uint64_t grants() const { return grants_; }

    /** @name Scheduler-event counters @{ */
    /** Erases suspended by host reads. */
    std::uint64_t eraseSuspends() const { return eraseSuspends_; }
    /** Host reads that claimed an unstarted background op's slot. */
    std::uint64_t readBypasses() const { return readBypasses_; }
    /** Extra die time spent on suspend/resume overhead. */
    sim::Tick suspendOverhead() const { return suspendOverhead_; }
    /** @} */

    /** Forget all reservations (fresh measurement). */
    void reset();

    const std::string &name() const { return name_; }

  private:
    /** One die's calendar plus its preemptible tail reservation. */
    struct Die
    {
        sim::Tick free = 0;

        /** Tail background reservation not yet started (bypass
         *  target); freeBefore is the calendar before it was granted,
         *  so a read can be placed exactly where it would have run. */
        bool bgTail = false;
        sim::Tick bgStart = 0;
        sim::Tick bgDuration = 0;
        sim::Tick bgFreeBefore = 0;
        Op bgOp = Op::program;

        /** Tail erase reservation (suspend target). */
        bool eraseTail = false;
        sim::Tick eraseStart = 0;
        sim::Tick eraseEnd = 0;
        std::uint32_t suspends = 0;
    };

    std::string name_;
    NandSchedConfig cfg_;
    std::vector<Die> dies_;
    sim::Tick busy_ = 0;
    std::uint64_t grants_ = 0;
    std::uint64_t eraseSuspends_ = 0;
    std::uint64_t readBypasses_ = 0;
    sim::Tick suspendOverhead_ = 0;

    Grant hostRead(Die &d, sim::Tick earliest, sim::Tick duration);
};

} // namespace bssd::nand

#endif // BSSD_NAND_DIE_SCHED_HH
