#include "nand/nand_flash.hh"

#include <algorithm>

#include "sim/domain.hh"
#include "sim/rng.hh"

#include "sim/logging.hh"

namespace bssd::nand
{

NandConfig
NandConfig::tlcDatacenter()
{
    NandConfig c;
    c.geometry = NandGeometry{8, 4, 4096, 256, 4096};
    c.timing.readPage = sim::usOf(70);
    c.timing.programChunk = sim::usOf(700);
    c.timing.programChunkBytes = 32 * sim::KiB;
    c.timing.eraseBlock = sim::msOf(3.5);
    c.timing.channelBw = sim::mbPerSec(800);
    return c;
}

NandConfig
NandConfig::slcUltraLowLatency()
{
    NandConfig c;
    c.geometry = NandGeometry{8, 4, 4096, 256, 4096};
    c.timing.readPage = sim::usOf(3);
    c.timing.programChunk = sim::usOf(100);
    c.timing.programChunkBytes = 16 * sim::KiB;
    c.timing.eraseBlock = sim::msOf(1);
    c.timing.channelBw = sim::gbPerSec(1.2);
    return c;
}

NandConfig
NandConfig::tiny()
{
    NandConfig c;
    c.geometry = NandGeometry{2, 2, 8, 8, 4096};
    c.timing.readPage = sim::usOf(3);
    c.timing.programChunk = sim::usOf(100);
    c.timing.programChunkBytes = 4 * sim::KiB;
    c.timing.eraseBlock = sim::msOf(1);
    c.timing.channelBw = sim::gbPerSec(1.2);
    return c;
}

NandFlash::NandFlash(const NandConfig &cfg)
    : cfg_(cfg), dies_(cfg.geometry.totalDies(), cfg.sched, "nand.dies")
{
    channels_.reserve(cfg_.geometry.channels);
    for (std::uint32_t c = 0; c < cfg_.geometry.channels; ++c)
        channels_.emplace_back("nand.chan" + std::to_string(c));
    if (cfg_.geometry.pageSize == 0 || cfg_.geometry.pagesPerBlock == 0 ||
        cfg_.geometry.blocksPerDie == 0 || cfg_.geometry.totalDies() == 0) {
        sim::fatal("NAND geometry has a zero dimension");
    }
    if (cfg_.factoryBadBlockRate < 0.0 || cfg_.factoryBadBlockRate > 0.2)
        sim::fatal("factory bad-block rate out of range");
    // Deterministic factory defect map.
    if (cfg_.factoryBadBlockRate > 0.0) {
        sim::Rng rng(cfg_.badBlockSeed);
        for (std::uint32_t d = 0; d < cfg_.geometry.totalDies(); ++d)
            for (std::uint32_t b = 0; b < cfg_.geometry.blocksPerDie; ++b)
                if (rng.chance(cfg_.factoryBadBlockRate))
                    badBlocks_.insert(blockKey(d, b));
    }
}

bool
NandFlash::isBad(std::uint32_t die, std::uint32_t block) const
{
    return badBlocks_.contains(blockKey(die, block));
}

void
NandFlash::markBad(std::uint32_t die, std::uint32_t block)
{
    checkPpa(Ppa{die, block, 0});
    badBlocks_.insert(blockKey(die, block));
}

std::uint32_t
NandFlash::badBlockCount() const
{
    return static_cast<std::uint32_t>(badBlocks_.size());
}

std::uint64_t
NandFlash::blockKey(std::uint32_t die, std::uint32_t block) const
{
    return (std::uint64_t(die) << 32) | block;
}

void
NandFlash::checkPpa(Ppa ppa) const
{
    const auto &g = cfg_.geometry;
    if (ppa.die >= g.totalDies() || ppa.block >= g.blocksPerDie ||
        ppa.page >= g.pagesPerBlock) {
        sim::panic("PPA out of range: die ", ppa.die, " block ", ppa.block,
                   " page ", ppa.page);
    }
}

void
NandFlash::readPage(Ppa ppa, std::span<std::uint8_t> out) const
{
    checkPpa(ppa);
    if (out.size() < cfg_.geometry.pageSize)
        sim::panic("readPage output buffer smaller than a page");
    pagesRead_.add();
    auto it = pages_.find(ppa.packed());
    if (it == pages_.end()) {
        std::fill_n(out.begin(), cfg_.geometry.pageSize, 0xff);
        return;
    }
    std::copy(it->second.begin(), it->second.end(), out.begin());
}

bool
NandFlash::programPage(Ppa ppa, std::span<const std::uint8_t> data)
{
    checkPpa(ppa);
    if (data.size() > cfg_.geometry.pageSize)
        sim::panic("programPage data larger than a page");
    if (isBad(ppa.die, ppa.block))
        sim::panic("program to bad block ", ppa.block, " on die ",
                   ppa.die);
    auto &blk = blocks_[blockKey(ppa.die, ppa.block)];
    if (ppa.page != blk.writePtr) {
        sim::panic("out-of-order NAND program: die ", ppa.die, " block ",
                   ppa.block, " page ", ppa.page, " expected ",
                   blk.writePtr);
    }
    // Consult the fault schedule before announcing the hit: the fail
    // schedule is keyed by the hit index of *this* program.
    const bool fail = faults_ && faults_->failNandProgram();
    if (faults_)
        faults_->hit(sim::Tp::nandProgram);
    pagesProgrammed_.add();
    // A failed program still consumes the page (its cells are
    // disturbed); the FTL must not retry the same page.
    blk.writePtr = ppa.page + 1;
    if (fail) {
        programFails_.add();
        return false;
    }
    auto &store = pages_[ppa.packed()];
    store.assign(cfg_.geometry.pageSize, 0xff);
    std::copy(data.begin(), data.end(), store.begin());
    return true;
}

bool
NandFlash::eraseBlock(std::uint32_t die, std::uint32_t block)
{
    checkPpa(Ppa{die, block, 0});
    if (isBad(die, block))
        sim::panic("erase of bad block ", block, " on die ", die);
    const bool fail = faults_ && faults_->failNandErase();
    if (faults_)
        faults_->hit(sim::Tp::nandErase);
    if (fail) {
        eraseFails_.add();
        return false;
    }
    blocksErased_.add();
    auto &blk = blocks_[blockKey(die, block)];
    for (std::uint32_t p = 0; p < blk.writePtr; ++p)
        pages_.erase(Ppa{die, block, p}.packed());
    blk.writePtr = 0;
    ++blk.eraseCount;
    return true;
}

bool
NandFlash::isProgrammed(Ppa ppa) const
{
    checkPpa(ppa);
    return pages_.contains(ppa.packed());
}

std::uint32_t
NandFlash::writePointer(std::uint32_t die, std::uint32_t block) const
{
    auto it = blocks_.find(blockKey(die, block));
    return it == blocks_.end() ? 0 : it->second.writePtr;
}

std::uint64_t
NandFlash::eraseCount(std::uint32_t die, std::uint32_t block) const
{
    auto it = blocks_.find(blockKey(die, block));
    return it == blocks_.end() ? 0 : it->second.eraseCount;
}

sim::Tick
NandFlash::pageTransferTime() const
{
    return cfg_.timing.channelBw.transferTime(cfg_.geometry.pageSize);
}

TimedOp
NandFlash::doTimedRead(sim::Tick ready, std::span<const Ppa> ppas,
                       bool background)
{
    BSSD_OWN_GUARD(this);
    if (ppas.empty())
        return {{ready, ready}, ready};
    sim::Tick first = sim::maxTick;
    sim::Tick mediaEnd = 0;
    sim::Tick last = 0;
    const sim::Tick xfer = pageTransferTime();
    for (const Ppa &ppa : ppas) {
        checkPpa(ppa);
        auto g = dies_.reserveOn(ppa.die, ready, cfg_.timing.readPage,
                                 DieScheduler::Op::read, background);
        if (g.suspendedErase) {
            sim::tracepointHit(faults_, tracer_, sim::Tp::nandEraseSuspend,
                               g.iv.start);
        }
        auto ch_iv = channels_[channelOf(ppa.die)].reserve(g.iv.end, xfer);
        first = std::min(first, g.iv.start);
        mediaEnd = std::max(mediaEnd, g.iv.end);
        last = std::max(last, ch_iv.end);
    }
    return {{first, last}, mediaEnd};
}

TimedOp
NandFlash::doTimedProgram(sim::Tick ready, std::span<const Ppa> ppas,
                          bool background)
{
    BSSD_OWN_GUARD(this);
    if (ppas.empty())
        return {{ready, ready}, ready};
    const std::uint64_t chunkPages = std::max<std::uint64_t>(
        1, cfg_.timing.programChunkBytes / cfg_.geometry.pageSize);
    sim::Tick first = sim::maxTick;
    sim::Tick last = 0;
    // Consecutive same-die pages share one multi-plane chunk; the
    // chunk transfers over its die's channel, then the die holds tPROG.
    // Chunks of one program landing on the same channel or die
    // serialize on those FIFO calendars.
    std::size_t i = 0;
    while (i < ppas.size()) {
        const std::uint32_t die = ppas[i].die;
        checkPpa(ppas[i]);
        std::uint64_t n = 1;
        while (i + n < ppas.size() && ppas[i + n].die == die &&
               n < chunkPages) {
            checkPpa(ppas[i + n]);
            ++n;
        }
        const std::uint64_t bytes = n * cfg_.geometry.pageSize;
        auto ch_iv = channels_[channelOf(die)].reserve(
            ready, cfg_.timing.channelBw.transferTime(bytes));
        auto g = dies_.reserveOn(die, ch_iv.end, cfg_.timing.programChunk,
                                 DieScheduler::Op::program, background);
        first = std::min(first, ch_iv.start);
        last = std::max(last, g.iv.end);
        i += n;
    }
    return {{first, last}, last};
}

sim::Interval
NandFlash::doTimedErase(sim::Tick ready, std::uint32_t die,
                        bool background)
{
    BSSD_OWN_GUARD(this);
    checkPpa(Ppa{die, 0, 0});
    return dies_
        .reserveOn(die, ready, cfg_.timing.eraseBlock,
                   DieScheduler::Op::erase, background)
        .iv;
}

TimedOp
NandFlash::timedRead(sim::Tick ready, std::span<const Ppa> ppas)
{
    return doTimedRead(ready, ppas, false);
}

TimedOp
NandFlash::timedProgram(sim::Tick ready, std::span<const Ppa> ppas)
{
    return doTimedProgram(ready, ppas, false);
}

sim::Interval
NandFlash::timedErase(sim::Tick ready, std::uint32_t die)
{
    return doTimedErase(ready, die, false);
}

TimedOp
NandFlash::timedGcRead(sim::Tick ready, std::span<const Ppa> ppas)
{
    return doTimedRead(ready, ppas, true);
}

TimedOp
NandFlash::timedGcProgram(sim::Tick ready, std::span<const Ppa> ppas)
{
    return doTimedProgram(ready, ppas, true);
}

sim::Interval
NandFlash::timedGcErase(sim::Tick ready, std::uint32_t die)
{
    return doTimedErase(ready, die, true);
}

void
NandFlash::resetTiming()
{
    dies_.reset();
    for (auto &ch : channels_)
        ch.reset();
}

} // namespace bssd::nand
