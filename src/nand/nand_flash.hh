/**
 * @file
 * Functional + timing model of a multi-channel NAND flash array.
 *
 * The functional half stores real page contents (sparsely, so an
 * 800 GB array costs memory only for pages actually touched) and
 * enforces NAND programming rules: a page must belong to an erased
 * block and pages within a block must be programmed in order.
 *
 * The timing half models the channel -> way -> die topology: every
 * timed operation names the physical pages it touches and reserves
 * exactly the calendars its addresses map to. A page read occupies its
 * die for tR and its die's channel for the transfer; a program
 * occupies the channel for the chunk transfer then the die for tPROG;
 * an erase occupies its die for tBERS. Die d lives on channel
 * d % channels, way d / channels, so requests striped across
 * consecutive dies fan out across channels (the bandwidth curves of
 * Fig. 8) while same-die or same-channel streams contend honestly.
 */

#ifndef BSSD_NAND_NAND_FLASH_HH
#define BSSD_NAND_NAND_FLASH_HH

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "nand/die_sched.hh"
#include "nand/nand_config.hh"
#include "sim/fault.hh"
#include "sim/metrics.hh"
#include "sim/resource.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace bssd::nand
{

/** Physical page address: (die, block, page) packed for map keys. */
struct Ppa
{
    std::uint32_t die = 0;
    std::uint32_t block = 0;
    std::uint32_t page = 0;

    bool operator==(const Ppa &) const = default;

    std::uint64_t
    packed() const
    {
        return (std::uint64_t(die) << 48) | (std::uint64_t(block) << 24) |
               page;
    }
};

/** What one timed NAND operation was granted. */
struct TimedOp
{
    /** First reservation start to last reservation end. */
    sim::Interval iv;
    /**
     * When the last die finished its cell work (tR / tPROG). For reads
     * the channel transfers trail the cell reads, so
     * iv.start <= mediaEnd <= iv.end and [mediaEnd, iv.end) is pure
     * bus time; for programs mediaEnd == iv.end.
     */
    sim::Tick mediaEnd = 0;
};

/**
 * The NAND array. All "timed*" member functions reserve die/channel
 * resources and return the granted interval; the plain members mutate
 * or query functional state only.
 */
class NandFlash
{
  public:
    explicit NandFlash(const NandConfig &cfg);

    const NandConfig &config() const { return cfg_; }

    /** @name Functional operations @{ */

    /**
     * Read one page into @p out (must hold pageSize bytes). Reading a
     * never-programmed page yields the erased pattern (0xff).
     */
    void readPage(Ppa ppa, std::span<std::uint8_t> out) const;

    /**
     * Program one page. @pre the block is erased at or beyond this
     * page, and @p page equals the block's next unwritten page (NAND
     * in-order programming rule).
     *
     * @return false when the program operation fails (injected grown
     *         defect): the page is consumed but holds no data, and
     *         the FTL must retire the block and rewrite elsewhere.
     */
    bool programPage(Ppa ppa, std::span<const std::uint8_t> data);

    /**
     * Erase a whole block, releasing its pages.
     * @return false when the erase fails (injected grown defect); the
     *         block keeps its contents and must be retired.
     */
    bool eraseBlock(std::uint32_t die, std::uint32_t block);

    /** True if the given page has been programmed since last erase. */
    bool isProgrammed(Ppa ppa) const;

    /** Next page index to program in a block (pagesPerBlock if full). */
    std::uint32_t writePointer(std::uint32_t die,
                               std::uint32_t block) const;

    /** Erase cycles a block has seen (wear). */
    std::uint64_t eraseCount(std::uint32_t die, std::uint32_t block) const;

    /**
     * True if the block is marked bad (factory defect map or a later
     * markBad()). Programming or erasing a bad block panics: the FTL
     * must never touch it.
     */
    bool isBad(std::uint32_t die, std::uint32_t block) const;

    /** Retire a block (grown defect). */
    void markBad(std::uint32_t die, std::uint32_t block);

    /** Number of bad blocks in the array. */
    std::uint32_t badBlockCount() const;

    /** @} */

    /** @name Address mapping (topology invariants) @{ */

    /** Channel die @p die hangs off (die modulo channel count). */
    std::uint32_t
    channelOf(std::uint32_t die) const
    {
        return die % cfg_.geometry.channels;
    }

    /** Way (position on its channel) of die @p die. */
    std::uint32_t
    wayOf(std::uint32_t die) const
    {
        return die / cfg_.geometry.channels;
    }

    /** @} */

    /** @name Timed operations (resource reservations) @{
     *
     * Each call names the physical pages it touches; the grants land
     * on exactly the die and channel calendars those addresses map to.
     */

    /** Reserve die tR + channel transfer time for each page read. */
    TimedOp timedRead(sim::Tick ready, std::span<const Ppa> ppas);

    /**
     * Reserve channel transfer + die tPROG time for programming
     * @p ppas. Runs of up to programChunkBytes/pageSize consecutive
     * same-die pages share one chunk (multi-plane program); chunks on
     * the same channel or die serialize on those calendars.
     */
    TimedOp timedProgram(sim::Tick ready, std::span<const Ppa> ppas);

    /** Reserve die time for one block erase on @p die. */
    sim::Interval timedErase(sim::Tick ready, std::uint32_t die);

    /** @} */

    /** @name Timed background (GC) operations @{
     *
     * Same resource model as the host-facing variants, but the grants
     * are marked background in the die scheduler: later host reads may
     * claim their slot (read priority) and background erases are
     * suspendable, when NandSchedConfig enables those knobs.
     */

    TimedOp timedGcRead(sim::Tick ready, std::span<const Ppa> ppas);
    TimedOp timedGcProgram(sim::Tick ready, std::span<const Ppa> ppas);
    sim::Interval timedGcErase(sim::Tick ready, std::uint32_t die);

    /** @} */

    /** @name Statistics @{ */
    std::uint64_t pagesRead() const { return pagesRead_.value(); }
    std::uint64_t pagesProgrammed() const { return pagesProgrammed_.value(); }
    std::uint64_t blocksErased() const { return blocksErased_.value(); }
    /** @} */

    /** Reset timing calendars (not contents) for a fresh measurement. */
    void resetTiming();

    /** Install the rig's fault injector (nullptr disables). */
    void setFaultInjector(sim::FaultInjector *f) { faults_ = f; }

    /** Install the rig's tracer (nullptr disables). */
    void setTracer(sim::Tracer *t) { tracer_ = t; }

    /** Program operations that failed (injected faults). */
    std::uint64_t programFailures() const { return programFails_.value(); }
    /** Erase operations that failed (injected faults). */
    std::uint64_t eraseFailures() const { return eraseFails_.value(); }

    /** Erases suspended by host reads (scheduler events). */
    std::uint64_t eraseSuspends() const { return dies_.eraseSuspends(); }
    /** Host reads that claimed a background op's slot. */
    std::uint64_t readBypasses() const { return dies_.readBypasses(); }

    /** Attach the array's counters to @p reg under @p prefix ("ssd0.nand"). */
    void
    registerMetrics(sim::MetricRegistry &reg,
                    const std::string &prefix) const
    {
        reg.addCounter(prefix + ".pages_read", pagesRead_);
        reg.addCounter(prefix + ".pages_programmed", pagesProgrammed_);
        reg.addCounter(prefix + ".blocks_erased", blocksErased_);
        reg.addCounter(prefix + ".program_fails", programFails_);
        reg.addCounter(prefix + ".erase_fails", eraseFails_);
        reg.addGauge(prefix + ".erase_suspends", [this] {
            return static_cast<double>(dies_.eraseSuspends());
        });
        reg.addGauge(prefix + ".read_bypasses", [this] {
            return static_cast<double>(dies_.readBypasses());
        });
        reg.addGauge(prefix + ".chan.busy_ticks", [this] {
            sim::Tick t = 0;
            for (const auto &ch : channels_)
                t += ch.busyTime();
            return static_cast<double>(t);
        });
        reg.addGauge(prefix + ".chan.xfers", [this] {
            std::uint64_t n = 0;
            for (const auto &ch : channels_)
                n += ch.grants();
            return static_cast<double>(n);
        });
    }

  private:
    NandConfig cfg_;

    /** Per-block metadata, allocated lazily. */
    struct BlockState
    {
        std::uint32_t writePtr = 0;
        std::uint64_t eraseCount = 0;
    };

    // Audited (DESIGN.md section 11): all three tables are accessed by
    // packed-PPA/block key only - reads, programs and erases address
    // explicit (die, block, page) coordinates and erase walks the
    // block's writePtr range, so no iteration order can reach
    // recovery, snapshot or report output.
    // bssd-lint: allow(det-unordered-member) keyed access only, never iterated
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> pages_;
    // bssd-lint: allow(det-unordered-member) keyed access only, never iterated
    std::unordered_map<std::uint64_t, BlockState> blocks_;
    // bssd-lint: allow(det-unordered-member) keyed membership probes only
    std::unordered_set<std::uint64_t> badBlocks_;

    DieScheduler dies_;
    /** One FIFO bus calendar per channel, indexed by channelOf(). */
    std::vector<sim::FifoResource> channels_;
    sim::FaultInjector *faults_ = nullptr;
    sim::Tracer *tracer_ = nullptr;
    /// mutable: reads are logically const but still counted.
    mutable sim::Counter pagesRead_{"nand.pagesRead"};
    sim::Counter pagesProgrammed_{"nand.pagesProgrammed"};
    sim::Counter blocksErased_{"nand.blocksErased"};
    sim::Counter programFails_{"nand.programFails"};
    sim::Counter eraseFails_{"nand.eraseFails"};

    std::uint64_t blockKey(std::uint32_t die, std::uint32_t block) const;
    void checkPpa(Ppa ppa) const;
    sim::Tick pageTransferTime() const;
    TimedOp doTimedRead(sim::Tick ready, std::span<const Ppa> ppas,
                        bool background);
    TimedOp doTimedProgram(sim::Tick ready, std::span<const Ppa> ppas,
                           bool background);
    sim::Interval doTimedErase(sim::Tick ready, std::uint32_t die,
                               bool background);
};

} // namespace bssd::nand

#endif // BSSD_NAND_NAND_FLASH_HH
