/**
 * @file
 * NAND flash geometry and timing parameters.
 *
 * Three presets mirror the paper's devices: a TLC-class array for the
 * datacenter SSD (PM963-like), and a fast single-bit (SLC / Z-NAND
 * class) array for the ULL-SSD and the 2B-SSD that piggybacks on it
 * (Table I: "single-bit NAND flash").
 */

#ifndef BSSD_NAND_NAND_CONFIG_HH
#define BSSD_NAND_NAND_CONFIG_HH

#include <cstdint>

#include "sim/ticks.hh"

namespace bssd::nand
{

/** Physical array shape. */
struct NandGeometry
{
    std::uint32_t channels = 8;
    std::uint32_t waysPerChannel = 4;
    std::uint32_t blocksPerDie = 256;
    std::uint32_t pagesPerBlock = 256;
    std::uint32_t pageSize = 4096;

    std::uint32_t totalDies() const { return channels * waysPerChannel; }

    std::uint64_t
    pagesPerDie() const
    {
        return std::uint64_t(blocksPerDie) * pagesPerBlock;
    }

    std::uint64_t
    totalPages() const
    {
        return pagesPerDie() * totalDies();
    }

    std::uint64_t
    capacityBytes() const
    {
        return totalPages() * pageSize;
    }
};

/** Media timing; see DESIGN.md section 5 for calibration targets. */
struct NandTiming
{
    /** Page read (tR). */
    sim::Tick readPage = sim::usOf(70);
    /** One program operation (tPROG), covering programChunkBytes. */
    sim::Tick programChunk = sim::usOf(700);
    /** Bytes programmed per program operation (page x planes). */
    std::uint64_t programChunkBytes = 32 * sim::KiB;
    /** Block erase (tBERS). */
    sim::Tick eraseBlock = sim::msOf(3.5);
    /** Per-channel bus bandwidth. */
    sim::Bandwidth channelBw = sim::mbPerSec(800);
};

/**
 * Die-level scheduler policy (DESIGN.md section 10).
 *
 * The knobs gate the two mechanisms that keep host reads fast while
 * background GC owns die time: read-over-program priority (a host read
 * may claim the slot of a queued-but-unstarted background operation)
 * and erase suspend/resume (a host read arriving mid-erase pauses the
 * erase, runs, and lets the erase resume with a fixed overhead). Both
 * default off, which makes the scheduler grant-for-grant identical to
 * the plain least-loaded-die calendar the model used before.
 */
struct NandSchedConfig
{
    /** Host reads may preempt queued background programs/erases. */
    bool readPriority = false;
    /** Host reads may suspend an in-flight block erase. */
    bool eraseSuspend = false;
    /** Latency to park an erase pulse before the read runs (tESPD). */
    sim::Tick eraseSuspendLatency = sim::usOf(5);
    /** Re-ramp overhead added when the suspended erase resumes. */
    sim::Tick eraseResumeOverhead = sim::usOf(10);
    /** Suspensions allowed per erase before it runs to completion
     *  unpreemptible (bounds erase starvation). */
    std::uint32_t maxSuspendsPerErase = 4;
};

/** Full NAND array configuration. */
struct NandConfig
{
    NandGeometry geometry;
    NandTiming timing;
    NandSchedConfig sched;

    /** Fraction of blocks shipped factory-bad (typically < 2%). */
    double factoryBadBlockRate = 0.0;
    /** Seed for the factory defect map. */
    std::uint64_t badBlockSeed = 0x0bad'b10c;

    /** TLC-class array behind the DC-SSD model. */
    static NandConfig tlcDatacenter();
    /** Z-NAND / SLC-class array behind the ULL-SSD and 2B-SSD models. */
    static NandConfig slcUltraLowLatency();
    /** Tiny geometry for unit tests (fast to garbage collect). */
    static NandConfig tiny();
};

} // namespace bssd::nand

#endif // BSSD_NAND_NAND_CONFIG_HH
