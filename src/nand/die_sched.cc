#include "nand/die_sched.hh"

#include <algorithm>

#include "sim/domain.hh"
#include "sim/logging.hh"

namespace bssd::nand
{

DieScheduler::DieScheduler(std::size_t dies, const NandSchedConfig &cfg,
                           std::string name)
    : name_(std::move(name)), cfg_(cfg), dies_(dies)
{
    if (dies == 0)
        sim::fatal("DieScheduler '", name_, "' needs at least one die");
}

DieScheduler::Grant
DieScheduler::hostRead(Die &d, sim::Tick earliest, sim::Tick duration)
{
    Grant g;

    // Read priority: claim the slot of the die's unstarted background
    // tail op; the background work is re-granted after the read.
    if (cfg_.readPriority && d.bgTail && earliest <= d.bgStart) {
        sim::Tick start = std::max(earliest, d.bgFreeBefore);
        sim::Tick end = start + duration;
        d.bgFreeBefore = end;
        d.bgStart = end;
        d.free = end + d.bgDuration;
        if (d.eraseTail && d.bgOp == Op::erase) {
            // The shifted background op is an erase: keep its suspend
            // window in sync with the new grant. It is a fresh erase
            // start, so it gets a full suspend budget again.
            d.eraseStart = d.bgStart;
            d.eraseEnd = d.free;
            d.suspends = 0;
        }
        ++readBypasses_;
        g.bypassedBackground = true;
        g.iv = {start, end};
        return g;
    }

    // Erase suspend: the die is mid-erase when the read arrives; park
    // the erase, run the read, resume with a fixed overhead. The
    // erase is the die's tail reservation (only tails are tracked),
    // so extending it is extending the calendar.
    if (cfg_.eraseSuspend && d.eraseTail && earliest >= d.eraseStart &&
        earliest < d.eraseEnd &&
        d.suspends < cfg_.maxSuspendsPerErase) {
        sim::Tick start = earliest + cfg_.eraseSuspendLatency;
        sim::Tick end = start + duration;
        sim::Tick stretch = cfg_.eraseSuspendLatency + duration +
                            cfg_.eraseResumeOverhead;
        d.eraseEnd += stretch;
        d.free = std::max(d.free, d.eraseEnd);
        ++d.suspends;
        ++eraseSuspends_;
        suspendOverhead_ +=
            cfg_.eraseSuspendLatency + cfg_.eraseResumeOverhead;
        g.suspendedErase = true;
        g.iv = {start, end};
        return g;
    }

    // Plain FIFO: the read queues like any other op and the die's
    // previous tail is no longer preemptible.
    sim::Tick start = std::max(earliest, d.free);
    d.free = start + duration;
    d.bgTail = false;
    d.eraseTail = false;
    g.iv = {start, d.free};
    return g;
}

DieScheduler::Grant
DieScheduler::reserveOn(std::size_t die, sim::Tick earliest,
                        sim::Tick duration, Op op, bool background)
{
    BSSD_OWN_GUARD(this);
    if (die >= dies_.size())
        sim::fatal("DieScheduler '", name_, "': die ", die,
                   " out of range (", dies_.size(), " dies)");
    Die &d = dies_[die];
    Grant g;

    if (op == Op::read && !background) {
        g = hostRead(d, earliest, duration);
    } else {
        sim::Tick prevFree = d.free;
        sim::Tick start = std::max(earliest, prevFree);
        sim::Tick end = start + duration;
        d.free = end;

        // This grant is the die's new tail; re-point the preemption
        // bookkeeping at it.
        d.bgTail = background;
        if (background) {
            d.bgStart = start;
            d.bgDuration = duration;
            d.bgFreeBefore = prevFree;
            d.bgOp = op;
        }
        d.eraseTail = op == Op::erase;
        if (d.eraseTail) {
            d.eraseStart = start;
            d.eraseEnd = end;
            d.suspends = 0;
        }
        g.iv = {start, end};
    }

    busy_ += duration;
    ++grants_;
    return g;
}

sim::Tick
DieScheduler::nextFree() const
{
    sim::Tick best = dies_[0].free;
    for (const auto &d : dies_)
        best = std::min(best, d.free);
    return best;
}

void
DieScheduler::reset()
{
    for (auto &d : dies_)
        d = Die{};
    busy_ = 0;
    grants_ = 0;
    eraseSuspends_ = 0;
    readBypasses_ = 0;
    suspendOverhead_ = 0;
}

} // namespace bssd::nand
