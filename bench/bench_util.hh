/**
 * @file
 * Shared helpers for the benchmark binaries: consistent table output
 * and the device/WAL configurations used across experiments.
 *
 * Every binary regenerates one table or figure from the paper and
 * prints (a) the measured series and (b) the paper's reference
 * numbers or shape expectations, so EXPERIMENTS.md can be refreshed
 * by re-running every binary under build/bench/.
 */

#ifndef BSSD_BENCH_BENCH_UTIL_HH
#define BSSD_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

namespace bssd::bench
{

/** Print a figure/table banner. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::printf("\n=============================================="
                "==================\n");
    std::printf("%s - %s\n", id.c_str(), title.c_str());
    std::printf("================================================"
                "================\n");
}

/** Print a section rule. */
inline void
section(const std::string &name)
{
    std::printf("\n--- %s ---\n", name.c_str());
}

/**
 * Parse an optional string-valued flag (`--trace=<file>` or
 * `--trace <file>`). @return empty string when absent.
 */
inline std::string
stringArg(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind(flag + "=", 0) == 0)
            return a.substr(flag.size() + 1);
        if (a == flag && i + 1 < argc)
            return argv[i + 1];
    }
    return {};
}

/** Human-readable byte size. */
inline std::string
sizeLabel(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0)
        std::snprintf(buf, sizeof(buf), "%lluM",
                      static_cast<unsigned long long>(bytes >> 20));
    else if (bytes >= 1024 && bytes % 1024 == 0)
        std::snprintf(buf, sizeof(buf), "%lluK",
                      static_cast<unsigned long long>(bytes >> 10));
    else if (bytes >= 1024)
        std::snprintf(buf, sizeof(buf), "%.1fK",
                      static_cast<double>(bytes) / 1024.0);
    else
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

} // namespace bssd::bench

#endif // BSSD_BENCH_BENCH_UTIL_HH
