/**
 * @file
 * Related-work comparison (Section VII): 2B-SSD vs an NVMe Persistent
 * Memory Region (PMR).
 *
 * Both expose capacitor-backed device NVRAM byte-granularly, so the
 * COMMIT path costs the same. The difference is the destage: 2B-SSD
 * maps its NVRAM to NAND and moves data over an internal datapath
 * (BA_FLUSH); PMR has no such mapping, so the host must push the same
 * bytes again through the whole block I/O stack. The bench measures
 * sustained logging throughput, host-visible stall, and how many
 * bytes crossed PCIe per logical log byte.
 */

#include <cstdio>
#include <vector>

#include "ba/two_b_ssd.hh"
#include "bench_util.hh"
#include "wal/ba_wal.hh"
#include "wal/pmr_wal.hh"
#include "wal/record.hh"

using namespace bssd;
using namespace bssd::bench;

namespace
{

constexpr int kOps = 40000;
constexpr std::size_t kPayload = 400;

struct Result
{
    double opsPerSec;
    double pcieBytesPerLogByte;
    std::uint64_t logBytes;
};

template <typename Wal>
Result
run(ba::TwoBSsd &dev, Wal &wal)
{
    sim::Tick t = sim::msOf(10);
    sim::Tick start = t;
    std::vector<std::uint8_t> p(kPayload, 0x6e);
    std::uint64_t pcie_before =
        dev.device().link().dmaBytes() +
        dev.device().link().postedBursts() * 64;
    for (int i = 0; i < kOps; ++i) {
        auto frame = wal::frameRecord(static_cast<std::uint64_t>(i), p);
        t = wal.append(t, frame);
        t = wal.commit(t);
    }
    std::uint64_t pcie_after = dev.device().link().dmaBytes() +
                               dev.device().link().postedBursts() * 64;
    Result r;
    r.opsPerSec = kOps / sim::toSec(t - start);
    r.logBytes = wal.bytesAppended();
    r.pcieBytesPerLogByte =
        static_cast<double>(pcie_after - pcie_before) /
        static_cast<double>(r.logBytes);
    return r;
}

} // namespace

int
main()
{
    banner("PMR comparison",
           "2B-SSD (internal datapath) vs NVMe PMR (host destage)");

    std::printf("%-10s %12s %18s\n", "config", "commits/s",
                "PCIe B / log B");

    Result ba;
    {
        ba::TwoBSsd dev;
        wal::BaWalConfig cfg;
        cfg.halfBytes = sim::MiB;
        cfg.regionBytes = 512 * sim::MiB;
        wal::BaWal wal(dev, cfg);
        ba = run(dev, wal);
        std::printf("%-10s %12.0f %18.2f\n", "2B-SSD", ba.opsPerSec,
                    ba.pcieBytesPerLogByte);
    }
    Result pmr;
    {
        ba::TwoBSsd dev;
        wal::PmrWalConfig cfg;
        cfg.halfBytes = sim::MiB;
        cfg.regionBytes = 512 * sim::MiB;
        wal::PmrWal wal(dev, cfg);
        pmr = run(dev, wal);
        std::printf("%-10s %12.0f %18.2f\n", "PMR", pmr.opsPerSec,
                    pmr.pcieBytesPerLogByte);
    }

    std::printf("\n-> PMR moves every log byte across PCIe ~twice "
                "(%.1fx the link traffic of 2B-SSD)\n   and spends "
                "host I/O-stack time on each destage; 2B-SSD's "
                "mapping + internal\n   datapath is the difference "
                "(paper Section VII).\n",
                pmr.pcieBytesPerLogByte / ba.pcieBytesPerLogByte);
    return 0;
}
