/**
 * @file
 * End-to-end I/O-path latency decomposition (DESIGN.md section 9).
 *
 * Runs an identical 4 KB random read/write stream against the three
 * device presets (DC-SSD, ULL-SSD, 2B-SSD block path) with the tracer
 * attached, then prints the per-phase latency breakdown each preset's
 * trace aggregates to - where do a block request's microseconds go:
 * frontend, transfer, buffer admission, FTL wait, media?
 *
 * The per-preset breakdowns are written to BENCH_iopath.json (the
 * checked-in baseline lives in baselines/); --trace / --metrics
 * additionally dump the 2B-SSD preset's raw trace and full metrics
 * report.
 *
 * Usage: bench_iopath [--out=FILE] [--trace=FILE] [--metrics=FILE]
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ba/two_b_ssd.hh"
#include "bench_util.hh"
#include "sim/report.hh"
#include "sim/trace.hh"
#include "ssd/ssd_device.hh"

using namespace bssd;
using namespace bssd::bench;

namespace
{

constexpr int kOps = 64;
constexpr std::uint64_t kOpBytes = 4096;

/** Scattered 4 KB-aligned offsets (same generator as bench_fig7). */
std::uint64_t
scatterOffset(int i)
{
    return 512 * sim::MiB + std::uint64_t((i * 7919) % 4096) * 64 * 4096;
}

struct PresetResult
{
    std::string name;
    std::vector<sim::Tracer::PhaseStat> phases;
    std::size_t traceEvents = 0;
};

/**
 * Drive the op stream against @p dev with @p tracer installed; the
 * caller seeds the device and attaches observability first. The gauge
 * sampler is pumped once per op on the simulated clock.
 */
void
runStream(ssd::SsdDevice &dev, sim::GaugeSampler &sampler)
{
    std::vector<std::uint8_t> buf(kOpBytes, 0x5a);
    std::vector<std::uint8_t> out(kOpBytes);
    sim::Tick t = sim::sOf(1);
    for (int i = 0; i < kOps; ++i) {
        dev.blockRead(t, scatterOffset(i), out);
        t += sim::msOf(1);
        dev.blockWrite(t, scatterOffset(i), buf);
        t += sim::msOf(1);
        sampler.sample(t);
    }
}

PresetResult
runPreset(const std::string &name, const ssd::SsdConfig &cfg)
{
    ssd::SsdDevice dev(cfg);

    // Seed every offset so reads hit programmed NAND pages.
    std::vector<std::uint8_t> pages(kOpBytes, 1);
    for (int i = 0; i < kOps; ++i)
        dev.blockWrite(0, scatterOffset(i), pages);

    sim::Tracer tracer;
    sim::MetricRegistry registry;
    dev.setTracer(&tracer);
    dev.registerMetrics(registry, name);
    sim::GaugeSampler sampler(registry, sim::msOf(2));

    runStream(dev, sampler);

    PresetResult res;
    res.name = name;
    res.phases = tracer.phaseBreakdown();
    res.traceEvents = tracer.events().size();
    return res;
}

void
printBreakdown(const PresetResult &res)
{
    section(res.name + " per-phase breakdown [us]");
    std::printf("%-8s %-12s %6s %10s %10s %10s\n", "cat", "phase",
                "count", "mean", "p50", "p99");
    for (const auto &p : res.phases) {
        double mean = p.count ? static_cast<double>(p.totalTicks) /
                                    static_cast<double>(p.count) / 1000.0
                              : 0.0;
        std::printf("%-8s %-12s %6llu %10.3f %10.3f %10.3f\n",
                    p.cat.c_str(), p.name.c_str(),
                    static_cast<unsigned long long>(p.count), mean,
                    static_cast<double>(p.p50) / 1000.0,
                    static_cast<double>(p.p99) / 1000.0);
    }
}

void
writeJson(std::ostream &os, const std::vector<PresetResult> &presets)
{
    os << "{\n  \"bench\": \"bench_iopath\",\n"
       << "  \"op_bytes\": " << kOpBytes << ",\n"
       << "  \"ops_per_preset\": " << kOps * 2 << ",\n"
       << "  \"presets\": {";
    for (std::size_t i = 0; i < presets.size(); ++i) {
        const auto &r = presets[i];
        os << (i ? ",\n" : "\n") << "    \"" << r.name
           << "\": {\"phases\": [";
        for (std::size_t j = 0; j < r.phases.size(); ++j) {
            const auto &p = r.phases[j];
            os << (j ? ",\n" : "\n") << "      {\"cat\": \"" << p.cat
               << "\", \"name\": \"" << p.name
               << "\", \"count\": " << p.count
               << ", \"mean_ticks\": "
               << (p.count ? static_cast<double>(p.totalTicks) /
                                 static_cast<double>(p.count)
                           : 0.0)
               << ", \"p50_ticks\": " << p.p50
               << ", \"p99_ticks\": " << p.p99 << "}";
        }
        os << (r.phases.empty() ? "]}" : "\n    ]}");
    }
    os << "\n  }\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    banner("iopath", "per-phase latency decomposition "
                     "(4KB, DC / ULL / 2B-SSD block path)");

    std::string outPath = stringArg(argc, argv, "--out");
    if (outPath.empty())
        outPath = "BENCH_iopath.json";
    const std::string tracePath = stringArg(argc, argv, "--trace");
    const std::string metricsPath = stringArg(argc, argv, "--metrics");

    std::vector<PresetResult> presets;
    presets.push_back(runPreset("dc", ssd::SsdConfig::dcSsd()));
    presets.push_back(runPreset("ull", ssd::SsdConfig::ullSsd()));
    // The 2B-SSD piggybacks on the ULL block path (the paper measures
    // identical block latencies); trace/metrics dumps come from this
    // preset.
    {
        ba::TwoBSsd twoB;
        std::vector<std::uint8_t> pages(kOpBytes, 1);
        for (int i = 0; i < kOps; ++i)
            twoB.blockWrite(0, scatterOffset(i), pages);

        sim::Tracer tracer;
        sim::MetricRegistry registry;
        twoB.installTracer(&tracer);
        twoB.registerMetrics(registry, "twob");
        sim::GaugeSampler sampler(registry, sim::msOf(2));
        runStream(twoB.device(), sampler);

        PresetResult res;
        res.name = "twob";
        res.phases = tracer.phaseBreakdown();
        res.traceEvents = tracer.events().size();
        if (!tracePath.empty()) {
            std::ofstream os(tracePath);
            tracer.writeChromeJson(os);
            std::printf("wrote trace: %s (%zu events, twob preset)\n",
                        tracePath.c_str(), res.traceEvents);
        }
        if (!metricsPath.empty()) {
            sim::RunReport rep;
            rep.bench = "bench_iopath";
            rep.config = "twob, 64x 4KB random read+write";
            rep.metrics = registry.snapshot();
            rep.phases = res.phases;
            rep.series = &sampler;
            std::ofstream os(metricsPath);
            rep.writeJson(os);
            std::printf("wrote metrics report: %s\n",
                        metricsPath.c_str());
        }
        presets.push_back(std::move(res));
    }

    for (const auto &r : presets)
        printBreakdown(r);

    std::ofstream os(outPath);
    writeJson(os, presets);
    std::printf("\nwrote %s\n", outPath.c_str());
    return 0;
}
