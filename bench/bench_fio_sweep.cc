/**
 * @file
 * Device-level FIO sweep (extension): queue-depth and block-size
 * scaling of the two comparison devices through the NVMe queue layer.
 * The paper reports QD1 only (Figs. 7/8); this table shows the model
 * behaves sanely across the rest of the operating envelope.
 */

#include <cstdio>

#include "bench_util.hh"
#include "ssd/ssd_device.hh"
#include "workload/fio.hh"

using namespace bssd;
using namespace bssd::bench;
using namespace bssd::workload;

namespace
{

FioResult
run(const ssd::SsdConfig &cfg, FioPattern p, std::uint32_t bs,
    std::uint16_t qd)
{
    ssd::SsdDevice dev(cfg);
    FioJob job;
    job.pattern = p;
    job.blockSize = bs;
    job.queueDepth = qd;
    job.ios = 1024;
    job.regionBytes = 128 * sim::MiB;
    job.precondition = p != FioPattern::seqWrite &&
                       p != FioPattern::randWrite;
    return runFio(dev, job);
}

} // namespace

int
main()
{
    banner("FIO sweep", "4 KB random reads/writes across queue depths "
                        "(extension)");

    section("4 KB random read IOPS vs queue depth");
    std::printf("%6s %12s %12s\n", "QD", "ULL-SSD", "DC-SSD");
    for (std::uint16_t qd : {1, 2, 4, 8, 16, 32}) {
        auto u = run(ssd::SsdConfig::ullSsd(), FioPattern::randRead,
                     4096, qd);
        auto d = run(ssd::SsdConfig::dcSsd(), FioPattern::randRead,
                     4096, qd);
        std::printf("%6u %12.0f %12.0f\n", qd, u.iops, d.iops);
    }

    section("4 KB random write IOPS vs queue depth");
    std::printf("%6s %12s %12s\n", "QD", "ULL-SSD", "DC-SSD");
    for (std::uint16_t qd : {1, 4, 16}) {
        auto u = run(ssd::SsdConfig::ullSsd(), FioPattern::randWrite,
                     4096, qd);
        auto d = run(ssd::SsdConfig::dcSsd(), FioPattern::randWrite,
                     4096, qd);
        std::printf("%6u %12.0f %12.0f\n", qd, u.iops, d.iops);
    }

    section("sequential read bandwidth vs block size (QD4) [GB/s]");
    std::printf("%-8s %12s %12s\n", "bs", "ULL-SSD", "DC-SSD");
    for (std::uint32_t bs :
         {4096u, 65536u, 1048576u, 4194304u}) {
        auto u = run(ssd::SsdConfig::ullSsd(), FioPattern::seqRead, bs,
                     4);
        auto d = run(ssd::SsdConfig::dcSsd(), FioPattern::seqRead, bs,
                     4);
        std::printf("%-8s %12.2f %12.2f\n", sizeLabel(bs).c_str(),
                    u.bandwidthGBps, d.bandwidthGBps);
    }

    std::printf("\nexpected shape: IOPS scale with QD until the "
                "firmware frontend binds;\nwrites outrun reads at low "
                "QD (buffered); sequential bandwidth approaches\nthe "
                "Fig. 8 envelopes.\n");
    return 0;
}
