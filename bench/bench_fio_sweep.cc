/**
 * @file
 * Device-level FIO sweep (extension): queue-depth and block-size
 * scaling of the two comparison devices through the NVMe queue layer.
 * The paper reports QD1 only (Figs. 7/8); this table shows the model
 * behaves sanely across the rest of the operating envelope.
 *
 * Every (device, pattern, block size, queue depth) cell is an
 * independent simulation, so the whole sweep runs concurrently on the
 * sweep harness; pass --threads=1 to force serial execution.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_rigs.hh"
#include "bench_util.hh"
#include "sim/sweep.hh"
#include "ssd/ssd_device.hh"
#include "workload/fio.hh"

using namespace bssd;
using namespace bssd::bench;
using namespace bssd::workload;

namespace
{

FioResult
run(const ssd::SsdConfig &cfg, FioPattern p, std::uint32_t bs,
    std::uint16_t qd)
{
    ssd::SsdDevice dev(cfg);
    FioJob job;
    job.pattern = p;
    job.blockSize = bs;
    job.queueDepth = qd;
    job.ios = 1024;
    job.regionBytes = 128 * sim::MiB;
    job.precondition = p != FioPattern::seqWrite &&
                       p != FioPattern::randWrite;
    return runFio(dev, job);
}

/** One cell: ULL and DC results for a (pattern, bs, qd) point. */
struct Cell
{
    FioPattern pattern;
    std::uint32_t bs;
    std::uint16_t qd;
    FioResult ull;
    FioResult dc;
};

} // namespace

int
main(int argc, char **argv)
{
    banner("FIO sweep", "4 KB random reads/writes across queue depths "
                        "(extension)");

    std::vector<Cell> cells;
    for (std::uint16_t qd : {1, 2, 4, 8, 16, 32})
        cells.push_back({FioPattern::randRead, 4096, qd, {}, {}});
    for (std::uint16_t qd : {1, 4, 16})
        cells.push_back({FioPattern::randWrite, 4096, qd, {}, {}});
    for (std::uint32_t bs : {4096u, 65536u, 1048576u, 4194304u})
        cells.push_back({FioPattern::seqRead, bs, 4, {}, {}});

    std::vector<std::function<void()>> jobs;
    for (auto &cell : cells) {
        jobs.push_back([&cell] {
            cell.ull = run(ssd::SsdConfig::ullSsd(), cell.pattern,
                           cell.bs, cell.qd);
        });
        jobs.push_back([&cell] {
            cell.dc = run(ssd::SsdConfig::dcSsd(), cell.pattern,
                          cell.bs, cell.qd);
        });
    }
    sim::runParallel(jobs, threadsArg(argc, argv));

    section("4 KB random read IOPS vs queue depth");
    std::printf("%6s %12s %12s\n", "QD", "ULL-SSD", "DC-SSD");
    for (const auto &c : cells) {
        if (c.pattern != FioPattern::randRead)
            continue;
        std::printf("%6u %12.0f %12.0f\n", c.qd, c.ull.iops, c.dc.iops);
    }

    section("4 KB random write IOPS vs queue depth");
    std::printf("%6s %12s %12s\n", "QD", "ULL-SSD", "DC-SSD");
    for (const auto &c : cells) {
        if (c.pattern != FioPattern::randWrite)
            continue;
        std::printf("%6u %12.0f %12.0f\n", c.qd, c.ull.iops, c.dc.iops);
    }

    section("sequential read bandwidth vs block size (QD4) [GB/s]");
    std::printf("%-8s %12s %12s\n", "bs", "ULL-SSD", "DC-SSD");
    for (const auto &c : cells) {
        if (c.pattern != FioPattern::seqRead)
            continue;
        std::printf("%-8s %12.2f %12.2f\n", sizeLabel(c.bs).c_str(),
                    c.ull.bandwidthGBps, c.dc.bandwidthGBps);
    }

    std::printf("\nexpected shape: IOPS scale with QD until the "
                "firmware frontend binds;\nwrites outrun reads at low "
                "QD (buffered); sequential bandwidth approaches\nthe "
                "Fig. 8 envelopes.\n");
    return 0;
}
