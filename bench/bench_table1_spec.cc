/**
 * @file
 * Table I reproduction: the 2B-SSD specification, as configured in
 * this model, plus the invariants the sizing must satisfy (the
 * capacitor budget covers the BA-buffer dump; block path identical to
 * the piggybacked ULL-SSD).
 */

#include <cstdio>
#include <vector>

#include "ba/two_b_ssd.hh"
#include "bench_util.hh"
#include "ssd/ssd_device.hh"

using namespace bssd;
using namespace bssd::bench;

int
main()
{
    banner("Table I", "2B-SSD specification");

    ba::TwoBSsd dev;
    const auto &ba = dev.baConfig();
    const auto &base = dev.device().config();

    std::printf("%-42s %s\n", "Host interface",
                "PCIe Gen.3 x4 (3.2 GB/s model)");
    std::printf("%-42s %s\n", "Protocol", "NVMe-like block frontend");
    std::printf("%-42s %.0f GB logical (%s)\n", "Capacity",
                static_cast<double>(dev.device().capacityBytes()) / 1e9,
                base.name.c_str());
    std::printf("%-42s %u channels x %u ways\n", "SSD architecture",
                base.nandCfg.geometry.channels,
                base.nandCfg.geometry.waysPerChannel);
    std::printf("%-42s %s\n", "Storage medium",
                "single-bit NAND flash (Z-NAND-class timing)");
    std::printf("%-42s %u x %.0f uF\n",
                "Capacitance of electrolytic capacitors",
                ba.capacitorCount, ba.capacitorFarads * 1e6);
    std::printf("%-42s %llu MB\n", "BA-buffer size",
                static_cast<unsigned long long>(ba.bufferBytes >> 20));
    std::printf("%-42s %u\n", "Max. entries of BA-buffer",
                ba.maxEntries);

    section("sizing invariants");

    // 1. The capacitor budget must cover the power-loss dump.
    auto rep = dev.powerLoss(sim::msOf(1));
    std::printf("dump: %llu bytes in %.2f ms using %.1f mJ of %.1f mJ "
                "-> %s\n",
                static_cast<unsigned long long>(rep.dump.bytes),
                sim::toMs(rep.dump.duration), rep.dump.joulesUsed * 1e3,
                rep.dump.joulesBudget * 1e3,
                rep.dump.success ? "OK" : "INSUFFICIENT");

    // 2. Block path identical to the piggybacked ULL-SSD.
    ba::TwoBSsd fresh;
    ssd::SsdDevice ull(ssd::SsdConfig::ullSsd());
    std::vector<std::uint8_t> page(4096, 1);
    fresh.blockWrite(0, 0, page);
    ull.blockWrite(0, 0, page);
    std::vector<std::uint8_t> out(4096);
    auto a = fresh.blockRead(sim::sOf(1), 0, out);
    auto b = ull.blockRead(sim::sOf(1), 0, out);
    std::printf("block read parity with ULL-SSD: %.1f us vs %.1f us "
                "-> %s\n",
                sim::toUs(a.end - a.start), sim::toUs(b.end - b.start),
                (a.end - a.start) == (b.end - b.start) ? "OK"
                                                       : "MISMATCH");

    std::printf("\npaper: PCIe Gen.3 x4, NVMe 1.2, 800 GB, "
                "multi-channel/way, 1-bit NAND,\n       270 uF x 3, "
                "8 MB BA-buffer, 8 entries\n");
    return 0;
}
