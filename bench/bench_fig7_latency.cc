/**
 * @file
 * Fig. 7 reproduction: read and write latency as a function of
 * request size (8 B - 4 KB) for:
 *
 *   read:  DC-SSD block, ULL-SSD block, 2B-SSD MMIO, 2B-SSD read-DMA
 *   write: DC-SSD block, ULL-SSD block, 2B-SSD MMIO,
 *          2B-SSD persistent MMIO (+BA_SYNC)
 *
 * Paper reference points (Section V-B):
 *   - block 4 KB reads: ULL 13.2 us, DC ~6.3x slower
 *   - MMIO read scales linearly (8 B non-posted splits); crosses ULL
 *     at ~350 B and DC at ~2 KB; 4 KB costs ~150 us
 *   - read DMA: ~58 us at 4 KB (2.6x faster than raw MMIO), pays off
 *     from ~2 KB
 *   - block writes flat: ULL ~10 us, DC ~17 us
 *   - MMIO write: 630 ns at 8 B to ~2 us at 4 KB; +15%..47% with
 *     BA_SYNC; still ~6 us below a ULL block write at 4 KB
 */

#include <cstdio>
#include <fstream>
#include <vector>

#include "ba/two_b_ssd.hh"
#include "bench_util.hh"
#include "sim/report.hh"
#include "sim/trace.hh"
#include "ssd/ssd_device.hh"

using namespace bssd;
using namespace bssd::bench;

namespace
{

constexpr std::uint64_t sizes[] = {8,   16,   32,   64,   128,  256,
                                   512, 1024, 2048, 3072, 4096};

/** Scattered offsets, each seeded once, so reads hit real NAND pages
 *  without ever looking sequential (no read-ahead hits). */
std::uint64_t
scatterOffset(int i)
{
    return 512 * sim::MiB + std::uint64_t((i * 7919) % 4096) * 64 * 4096;
}

double
blockReadUs(ssd::SsdDevice &dev, std::uint64_t bytes, sim::Tick at,
            int slot)
{
    std::vector<std::uint8_t> out(bytes);
    auto iv = dev.blockRead(at, scatterOffset(slot), out);
    return sim::toUs(iv.end - iv.start);
}

double
blockWriteUs(ssd::SsdDevice &dev, std::uint64_t bytes, sim::Tick at,
             std::uint64_t offset)
{
    std::vector<std::uint8_t> d(bytes, 0x42);
    auto iv = dev.blockWrite(at, offset, d);
    return sim::toUs(iv.end - iv.start);
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Fig. 7", "read/write latency vs request size");

    const std::string tracePath = stringArg(argc, argv, "--trace");
    const std::string metricsPath = stringArg(argc, argv, "--metrics");

    ssd::SsdDevice dc(ssd::SsdConfig::dcSsd());
    ssd::SsdDevice ull(ssd::SsdConfig::ullSsd());
    ba::TwoBSsd twoB;

    // Pin a window so the memory interface has a mapped range.
    twoB.baPin(0, 1, 0, 0, 16 * 4096);

    // Seed every offset the read sweep will touch so reads hit real
    // NAND pages.
    std::vector<std::uint8_t> pages(2 * 4096, 1);
    for (int i = 0; i < 32; ++i) {
        dc.blockWrite(0, scatterOffset(i), pages);
        ull.blockWrite(0, scatterOffset(i), pages);
    }

    // Observability attaches AFTER setup so the trace and the metrics
    // cover the measured op stream only, not the seeding writes.
    sim::Tracer tracer;
    sim::MetricRegistry registry;
    if (!tracePath.empty() || !metricsPath.empty()) {
        dc.setTracer(&tracer);
        ull.setTracer(&tracer);
        twoB.installTracer(&tracer);
        dc.registerMetrics(registry, "dc");
        ull.registerMetrics(registry, "ull");
        twoB.registerMetrics(registry, "twob");
    }

    section("(a) read latency [us]");
    std::printf("%-8s %10s %10s %10s %10s\n", "size", "DC-blk",
                "ULL-blk", "2B-mmio", "2B-dma");
    sim::Tick t = sim::sOf(1);
    int slot = 0;
    for (std::uint64_t sz : sizes) {
        double dc_us = blockReadUs(dc, sz, t, slot);
        double ull_us = blockReadUs(ull, sz, t, slot);
        ++slot;
        std::vector<std::uint8_t> out(sz);
        sim::Tick done = twoB.mmioRead(t, 0, out);
        double mmio_us = sim::toUs(done - t);
        auto iv = twoB.baReadDma(t + sim::msOf(1), 1, out);
        double dma_us = sim::toUs(iv.end - iv.start);
        std::printf("%-8s %10.1f %10.1f %10.1f %10.1f\n",
                    sizeLabel(sz).c_str(), dc_us, ull_us, mmio_us,
                    dma_us);
        t += sim::msOf(10);
    }
    std::printf("paper:   4KB: DC ~83, ULL 13.2, MMIO ~150, DMA ~58; "
                "crossovers ~350B (ULL) and ~2KB (DC)\n");

    section("(b) write latency [us]");
    std::printf("%-8s %10s %10s %10s %10s\n", "size", "DC-blk",
                "ULL-blk", "2B-mmio", "2B-pers");
    std::uint64_t w_off = 128 * sim::MiB;
    for (std::uint64_t sz : sizes) {
        double dc_us = blockWriteUs(dc, sz, t, w_off);
        double ull_us = blockWriteUs(ull, sz, t, w_off);
        std::vector<std::uint8_t> d(sz, 0x24);

        // Plain MMIO write: stores + natural WC drain.
        sim::Tick t0 = t;
        sim::Tick t1 = twoB.mmioWrite(t0, 0, d);
        t1 = twoB.wc().drainAll(t1);
        double mmio_us = sim::toUs(t1 - t0);

        // Persistent MMIO write: stores + BA_SYNC over the range.
        sim::Tick t2 = t + sim::msOf(1);
        sim::Tick t3 = twoB.mmioWrite(t2, 0, d);
        t3 = twoB.baSyncRange(t3, 1, 0, sz);
        double pers_us = sim::toUs(t3 - t2);

        std::printf("%-8s %10.2f %10.2f %10.3f %10.3f\n",
                    sizeLabel(sz).c_str(), dc_us, ull_us, mmio_us,
                    pers_us);
        t += sim::msOf(10);
        w_off += 64 * 4096;
    }
    std::printf("paper:   blocks flat (DC ~17, ULL ~10); MMIO 0.63 "
                "(8B) to ~2 (4KB); +15%%..47%% persistent\n");

    if (!tracePath.empty()) {
        std::ofstream os(tracePath);
        tracer.writeChromeJson(os);
        std::printf("\nwrote trace: %s (%zu events)\n",
                    tracePath.c_str(), tracer.events().size());
    }
    if (!metricsPath.empty()) {
        sim::RunReport rep;
        rep.bench = "bench_fig7_latency";
        rep.config = "dc+ull+2b, 8B-4KB read/write sweep";
        rep.metrics = registry.snapshot();
        rep.phases = tracer.phaseBreakdown();
        std::ofstream os(metricsPath);
        rep.writeJson(os);
        std::printf("wrote metrics report: %s\n", metricsPath.c_str());
    }
    return 0;
}
