/**
 * @file
 * Simulation-kernel self-benchmark: raw event throughput of the slab
 * event pool versus the legacy kernel design, plus wall-clock spot
 * checks of two real figure benches.
 *
 * The legacy implementation (std::function callbacks, one heap
 * allocation per event, an unordered_set membership probe per
 * schedule/fire/cancel) is kept here verbatim as the comparison
 * baseline, so the ≥ 2x kernel-throughput acceptance bar stays
 * checkable in-tree forever.
 *
 * Emits BENCH_simcore.json (see baselines/BENCH_simcore.json for the
 * recorded trajectory) plus BENCH_parallel.json: the parallel-engine
 * scaling curve on the sharded-cluster scenario (events/sec vs
 * --engine-threads, digest-checked bit-identical at every point).
 *
 * Usage: bench_simcore [--engine-threads=N] [--cluster-out=FILE]
 *   --engine-threads=N  run ONLY the cluster scenario at N engine
 *                       threads (skips the kernel sections)
 *   --cluster-out=FILE  write the run's deterministic artifact
 *                       (digest, counters, metrics, trace) to FILE;
 *                       CI cmp's the serial and threaded artifacts
 *                       byte-for-byte
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <queue>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_util.hh"
#include "support/stopwatch.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "ssd/ssd_device.hh"
#include "wal/ba_wal.hh"
#include "ba/two_b_ssd.hh"
#include "db/minipg/minipg.hh"
#include "workload/cluster.hh"
#include "workload/fio.hh"
#include "workload/runner.hh"

using namespace bssd;
using namespace bssd::bench;

namespace
{

/** The seed kernel, verbatim: the "before" side of the comparison. */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;
    using EventId = std::uint64_t;

    sim::Tick now() const { return now_; }

    EventId
    schedule(sim::Tick when, Callback cb)
    {
        EventId id = nextId_++;
        pq_.push(Entry{when, id, std::move(cb)});
        pendingIds_.insert(id);
        return id;
    }

    EventId
    scheduleIn(sim::Tick delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    bool deschedule(EventId id) { return pendingIds_.erase(id) > 0; }

    std::size_t
    run(std::size_t limit = ~std::size_t(0))
    {
        std::size_t fired = 0;
        while (fired < limit && !pq_.empty()) {
            Entry e = pq_.top();
            pq_.pop();
            if (pendingIds_.erase(e.id) == 0)
                continue;
            now_ = e.when;
            ++fired;
            e.cb();
        }
        return fired;
    }

  private:
    struct Entry
    {
        sim::Tick when;
        EventId id;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : id > o.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq_;
    // bssd-lint: allow(det-unordered-member) legacy comparison kernel,
    // kept verbatim; the set is only probed for membership, never
    // iterated, so its order cannot reach any output.
    std::unordered_set<EventId> pendingIds_;
    sim::Tick now_ = 0;
    EventId nextId_ = 1;
};

/**
 * Scenario 1 — timer chains: K concurrent self-rescheduling timers
 * (the shape of destage timers and DMA completion interrupts), run
 * until @p total events have fired.
 */
template <typename Queue>
double
timerChains(std::size_t total)
{
    Queue q;
    constexpr std::size_t kChains = 64;
    Stopwatch sw;
    std::uint64_t ticks[kChains] = {};
    std::function<void(std::size_t)> arm = [&](std::size_t c) {
        q.scheduleIn(1 + (c % 7), [&, c] {
            ++ticks[c];
            arm(c);
        });
    };
    for (std::size_t c = 0; c < kChains; ++c)
        arm(c);
    std::size_t fired = q.run(total);
    double ms = sw.ms();
    if (fired != total)
        sim::fatal("timerChains fired ", fired, " != ", total);
    return static_cast<double>(total) / (ms / 1000.0);
}

/**
 * Scenario 2 — schedule/cancel churn: every I/O arms a timeout that
 * is almost always cancelled (the common pattern for watchdogs).
 * Throughput counts scheduled-then-cancelled pairs plus fired events.
 */
template <typename Queue>
double
cancelChurn(std::size_t total)
{
    Queue q;
    Stopwatch sw;
    std::size_t done = 0;
    for (std::size_t i = 0; done < total; ++i) {
        auto timeout = q.schedule(q.now() + sim::usOf(1), [] {});
        q.schedule(q.now() + 1, [&done] { ++done; });
        q.deschedule(timeout);
        q.run(1);
        done += 1; // the cancelled pair counts as one unit of work
    }
    double ms = sw.ms();
    return static_cast<double>(total) / (ms / 1000.0);
}

/**
 * Scenario 3 — bursty fan-out: batches of events land at scattered
 * future ticks (GC relocations, power-loss dump), then drain.
 */
template <typename Queue>
double
burstDrain(std::size_t total)
{
    Queue q;
    Stopwatch sw;
    std::size_t fired = 0;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    while (fired < total) {
        for (int i = 0; i < 4096; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.schedule(q.now() + 1 + (x & 0xffff), [&fired] { ++fired; });
        }
        q.run();
    }
    double ms = sw.ms();
    return static_cast<double>(fired) / (ms / 1000.0);
}

struct Row
{
    const char *name;
    double legacyEps;
    double pooledEps;
};

/**
 * The multi-device scenario for the parallel-engine scaling curve:
 * 8 sharded miniredis-over-BA-WAL rigs with GC active, driven by one
 * host-domain router. Heavy per-shard batches so the barrier cost
 * amortizes over real store/WAL/device work.
 */
workload::ClusterConfig
clusterScenario(unsigned engineThreads)
{
    workload::ClusterConfig cfg;
    cfg.shards = 8;
    cfg.wal = workload::ClusterConfig::Wal::ba;
    cfg.gc = true;
    cfg.engineThreads = engineThreads;
    cfg.opsPerCycle = 512;
    cfg.cycles = 24;
    cfg.keySpace = 2048;
    cfg.valueBytes = 192;
    return cfg;
}

struct ClusterRun
{
    workload::ClusterResult res;
    std::string chromeJson;
    double wallMs = 0.0;
};

ClusterRun
runClusterAt(unsigned engineThreads)
{
    ClusterRun run;
    sim::Tracer tracer;
    Stopwatch sw;
    run.res = workload::runCluster(clusterScenario(engineThreads),
                                   &tracer);
    run.wallMs = sw.ms();
    std::ostringstream os;
    tracer.writeChromeJson(os);
    run.chromeJson = os.str();
    return run;
}

/**
 * The deterministic artifact of a cluster run: everything except
 * wall-clock. CI runs this at 1 and 4 engine threads and cmp's the
 * two files byte-for-byte.
 */
void
writeClusterArtifact(std::ostream &os, const ClusterRun &run)
{
    const workload::ClusterResult &r = run.res;
    os << "{\n  \"scenario\": \"cluster-8shard-bawal-gc\",\n";
    os << "  \"state_digest\": \"" << std::hex << r.stateDigest
       << std::dec << "\",\n";
    os << "  \"ops_routed\": " << r.opsRouted
       << ",\n  \"ops_completed\": " << r.opsCompleted
       << ",\n  \"batches\": " << r.batchesCompleted
       << ",\n  \"events_fired\": " << r.eventsFired
       << ",\n  \"rounds\": " << r.rounds
       << ",\n  \"messages\": " << r.messages
       << ",\n  \"batch_p50_ticks\": " << r.batchP50
       << ",\n  \"batch_p99_ticks\": " << r.batchP99 << ",\n";
    os << "  \"metrics\": " << run.res.metricsJson << ",\n";
    os << "  \"trace\": " << run.chromeJson << "\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // --engine-threads=N: run only the cluster scenario (the shape CI
    // uses for the byte-identity gate).
    const std::string threadsFlag =
        stringArg(argc, argv, "--engine-threads");
    const std::string clusterOut = stringArg(argc, argv, "--cluster-out");
    if (!threadsFlag.empty()) {
        const unsigned n =
            static_cast<unsigned>(std::stoul(threadsFlag));
        banner("simcore", "cluster scenario at " + threadsFlag +
                              " engine thread(s)");
        ClusterRun run = runClusterAt(n == 0 ? 1 : n);
        std::printf("ops %llu  events %llu  rounds %llu  digest %llx  "
                    "wall %.1f ms\n",
                    static_cast<unsigned long long>(run.res.opsCompleted),
                    static_cast<unsigned long long>(run.res.eventsFired),
                    static_cast<unsigned long long>(run.res.rounds),
                    static_cast<unsigned long long>(run.res.stateDigest),
                    run.wallMs);
        if (!clusterOut.empty()) {
            std::ofstream os(clusterOut);
            writeClusterArtifact(os, run);
            std::printf("wrote %s\n", clusterOut.c_str());
        }
        return 0;
    }

    banner("simcore", "event-kernel throughput: slab pool vs legacy");

    constexpr std::size_t kEvents = 2'000'000;

    std::vector<Row> rows;
    rows.push_back({"timer-chains",
                    timerChains<LegacyEventQueue>(kEvents),
                    timerChains<sim::EventQueue>(kEvents)});
    rows.push_back({"cancel-churn",
                    cancelChurn<LegacyEventQueue>(kEvents),
                    cancelChurn<sim::EventQueue>(kEvents)});
    rows.push_back({"burst-drain",
                    burstDrain<LegacyEventQueue>(kEvents),
                    burstDrain<sim::EventQueue>(kEvents)});

    section("kernel events/sec (2M events per scenario)");
    std::printf("%-14s %14s %14s %9s\n", "scenario", "legacy",
                "slab-pool", "speedup");
    double worst = 1e300;
    double geo = 1.0;
    for (const Row &r : rows) {
        double s = r.pooledEps / r.legacyEps;
        worst = std::min(worst, s);
        geo *= s;
        std::printf("%-14s %14.0f %14.0f %8.2fx\n", r.name, r.legacyEps,
                    r.pooledEps, s);
    }
    geo = std::pow(geo, 1.0 / static_cast<double>(rows.size()));
    std::printf("geomean speedup: %.2fx (target >= 2x)\n", geo);

    // Wall-clock spot checks of real figure benches, for the perf
    // trajectory in baselines/BENCH_simcore.json.
    section("figure-bench wall-clock (ms)");
    Stopwatch sw;
    {
        ssd::SsdDevice dev(ssd::SsdConfig::ullSsd());
        workload::FioJob job;
        job.pattern = workload::FioPattern::randRead;
        job.ios = 2048;
        job.regionBytes = 64 * sim::MiB;
        workload::runFio(dev, job);
    }
    double fioMs = sw.ms();
    std::printf("%-28s %10.1f\n", "fig7-style fio 4k randread", fioMs);

    sw.restart();
    {
        ba::TwoBSsd dev;
        wal::BaWal log(dev, {});
        db::minipg::MiniPg pg(log);
        workload::LinkbenchConfig cfg;
        cfg.nodeCount = 10'000;
        workload::runLinkbenchOnPg(pg, cfg, 4, sim::msOf(50), 1);
    }
    double pgMs = sw.ms();
    std::printf("%-28s %10.1f\n", "fig9-style minipg linkbench", pgMs);

    // Parallel-engine scaling: the 8-shard cluster scenario at rising
    // engine thread counts. Digests must match the serial reference at
    // every point — parallelism changes wall-clock, never results.
    section("parallel engine scaling (8-shard cluster, BA-WAL + GC)");
    const unsigned hwCores = std::thread::hardware_concurrency();
    const unsigned threadPoints[] = {1, 2, 4, 8};
    std::vector<ClusterRun> scaling;
    for (unsigned n : threadPoints)
        scaling.push_back(runClusterAt(n));
    const ClusterRun &serial = scaling.front();
    std::printf("%8s %12s %14s %9s %10s\n", "threads", "wall ms",
                "events/sec", "speedup", "identical");
    double speedupAt4 = 0.0;
    for (std::size_t i = 0; i < scaling.size(); ++i) {
        const ClusterRun &r = scaling[i];
        const bool same =
            r.res.stateDigest == serial.res.stateDigest &&
            r.res.metricsJson == serial.res.metricsJson &&
            r.chromeJson == serial.chromeJson;
        if (!same)
            sim::fatal("cluster run at ", threadPoints[i],
                       " threads diverged from serial");
        const double eps = r.wallMs > 0.0
                               ? static_cast<double>(r.res.eventsFired) /
                                     (r.wallMs / 1000.0)
                               : 0.0;
        const double speedup = serial.wallMs / r.wallMs;
        if (threadPoints[i] == 4)
            speedupAt4 = speedup;
        std::printf("%8u %12.1f %14.0f %8.2fx %10s\n", threadPoints[i],
                    r.wallMs, eps, speedup, same ? "yes" : "NO");
    }
    std::printf("speedup at 4 threads: %.2fx (target >= 2x on a "
                ">=4-core host)\n",
                speedupAt4);
    if (hwCores < 4) {
        std::printf("note: this host exposes %u core(s); wall-clock "
                    "scaling is bounded by the hardware, the "
                    "bit-identity gate above is the binding check "
                    "here\n",
                    hwCores);
    }

    std::ofstream pjs("BENCH_parallel.json");
    pjs << "{\n  \"scenario\": \"cluster-8shard-bawal-gc\",\n";
    pjs << "  \"hardware_concurrency\": " << hwCores << ",\n";
    pjs << "  \"shards\": 8,\n  \"events_fired\": "
        << serial.res.eventsFired << ",\n  \"rounds\": "
        << serial.res.rounds << ",\n  \"messages\": "
        << serial.res.messages << ",\n";
    pjs << "  \"scaling\": [\n";
    for (std::size_t i = 0; i < scaling.size(); ++i) {
        const ClusterRun &r = scaling[i];
        pjs << "    {\"engine_threads\": " << threadPoints[i]
            << ", \"wall_ms\": " << r.wallMs
            << ", \"events_per_sec\": "
            << (r.wallMs > 0.0
                    ? static_cast<double>(r.res.eventsFired) /
                          (r.wallMs / 1000.0)
                    : 0.0)
            << ", \"speedup\": " << serial.wallMs / r.wallMs
            << ", \"bit_identical\": true}"
            << (i + 1 < scaling.size() ? ",\n" : "\n");
    }
    pjs << "  ],\n  \"speedup_at_4_threads\": " << speedupAt4
        << "\n}\n";
    std::printf("wrote BENCH_parallel.json\n");

    std::ofstream js("BENCH_simcore.json");
    js << "{\n  \"events_per_scenario\": " << kEvents << ",\n";
    js << "  \"kernel\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        js << "    {\"scenario\": \"" << rows[i].name
           << "\", \"legacy_eps\": " << rows[i].legacyEps
           << ", \"pooled_eps\": " << rows[i].pooledEps
           << ", \"speedup\": "
           << rows[i].pooledEps / rows[i].legacyEps << "}"
           << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    js << "  ],\n  \"geomean_speedup\": " << geo
       << ",\n  \"min_speedup\": " << worst
       << ",\n  \"fig7_fio_wall_ms\": " << fioMs
       << ",\n  \"fig9_minipg_wall_ms\": " << pgMs << "\n}\n";
    std::printf("\nwrote BENCH_simcore.json\n");
    return 0;
}
