/**
 * @file
 * Cluster-scale serving bench: the full bssd::cluster stack (sharded
 * miniredis fleets on 2B-SSD rigs behind the parallel engine) driven
 * by open-loop arrival mixes at 1M+ simulated users.
 *
 * Two mixes run over an 8-shard hash-sharded fleet:
 *
 *  - "poisson":     memoryless cycle arrivals, steady state;
 *  - "bursty-move": clustered arrivals (Poisson burst starts, 8
 *                   cycles per burst) with an online range move of a
 *                   quarter of the routing space mid-run — the
 *                   drain/copy/purge/flip sequence executes while
 *                   traffic keeps arriving.
 *
 * Every mix is run at 1, 2 and 8 engine threads and the digests and
 * merged metrics are required to match byte for byte before any
 * number is reported (the determinism gate is part of the bench, not
 * an afterthought). Emits BENCH_cluster.json (see baselines/) with
 * cluster throughput and p50/p99/p99.9 per-op latency.
 *
 * Usage: bench_cluster [--small] [--threads=N] [--queues=N]
 *                      [--qdepth=N] [--out=FILE] [--json=FILE]
 *                      [--trace=FILE]
 *   --small        CI preset: same 8-shard shape, ~3k ops, traced
 *   --threads=N    run every mix at exactly N engine threads (skips
 *                  the 1/2/8 identity sweep; CI runs this twice and
 *                  cmp's the --out artifacts)
 *   --queues=N     host NVMe I/O queue pairs per shard (default 1)
 *   --qdepth=N     batches each pair admits; 0 = unbounded (default)
 *   --out=FILE     deterministic artifact of the run (digests,
 *                  counters, metrics; no wall clock, no thread count)
 *   --json=FILE    BENCH_cluster.json summary (default when neither
 *                  --out nor --json given: BENCH_cluster.json)
 *   --trace=FILE   Chrome trace of the LAST mix's serial run (small
 *                  preset only; feeds trace_dump --validate)
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"
#include "support/stopwatch.hh"
#include "workload/cluster.hh"

using namespace bssd;
using namespace bssd::bench;
using workload::ClusterConfig;
using workload::ClusterResult;

namespace
{

struct Mix
{
    const char *name;
    ClusterConfig cfg;
};

/**
 * The 1M+ simulated-user fleet. With keySpace 2M and ~2.1M uniform
 * key draws, the expected distinct-user count is
 * 2M * (1 - e^(-2.1/2)) ~ 1.3M; the bench asserts >= 1M.
 * The GC preset is off: a 2M-key store would make every AOF-rewrite
 * snapshot of the tiny 128 KiB region quadratically expensive, and
 * the fleet-scale question here is scheduling, not GC (bench_sweep
 * covers GC-active cluster cells).
 */
ClusterConfig
fullFleet()
{
    ClusterConfig cfg;
    cfg.shards = 8;
    cfg.gc = false;
    cfg.opsPerCycle = 2048;
    cfg.cycles = 1024;
    cfg.keySpace = 2'000'000;
    cfg.valueBytes = 64;
    // ~82k offered ops/s against a fleet that serves ~125k/s: high
    // utilisation without runaway queueing, so the tail percentiles
    // measure the rigs, not an unbounded backlog.
    cfg.arrival.meanGap = sim::msOf(25);
    return cfg;
}

/** CI preset: same shape, two orders of magnitude fewer ops. */
ClusterConfig
smallFleet()
{
    ClusterConfig cfg;
    cfg.shards = 8;
    cfg.opsPerCycle = 64;
    cfg.cycles = 48;
    cfg.keySpace = 8192;
    cfg.valueBytes = 96;
    return cfg;
}

std::vector<Mix>
makeMixes(bool small)
{
    ClusterConfig base = small ? smallFleet() : fullFleet();

    Mix poisson{"poisson", base};

    Mix bursty{"bursty-move", base};
    bursty.cfg.arrival.kind = sim::ArrivalSpec::Kind::bursty;
    bursty.cfg.arrival.burstSize = 8;
    bursty.cfg.arrival.burstGap = sim::usOf(20);
    // Same mean offered load as poisson (8 cycles per burst), but
    // arriving as 16k-op spikes that stress the tail.
    if (!small)
        bursty.cfg.arrival.meanGap = sim::msOf(200);
    bursty.cfg.rebalanceAtCycle = base.cycles / 3;
    bursty.cfg.moveBegin256 = 0;
    bursty.cfg.moveEnd256 = 64;
    bursty.cfg.moveTo = base.shards - 1;

    return {poisson, bursty};
}

struct MixRun
{
    const char *name = "";
    ClusterResult res;
    double wallMs = 0.0;
};

MixRun
runMix(const Mix &mix, unsigned threads, sim::Tracer *trace)
{
    ClusterConfig cfg = mix.cfg;
    cfg.engineThreads = threads;
    MixRun run;
    run.name = mix.name;
    Stopwatch sw;
    run.res = workload::runCluster(cfg, trace);
    run.wallMs = sw.ms();
    return run;
}

double
opsPerSec(const ClusterResult &r)
{
    return r.horizon > 0
               ? static_cast<double>(r.opsCompleted) /
                     sim::toSec(r.horizon)
               : 0.0;
}

/** One summary record (identical bytes for identical runs). */
void
writeRecord(std::ostream &os, const MixRun &run)
{
    const ClusterResult &r = run.res;
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"mix\": \"%s\", \"users\": %llu, \"ops\": %llu, "
        "\"ops_per_sec\": %.0f, \"op_p50_us\": %.3f, "
        "\"op_p99_us\": %.3f, \"op_p999_us\": %.3f, "
        "\"rebalances\": %llu, \"moved_keys\": %llu, "
        "\"state_digest\": \"%llx\"}",
        run.name, static_cast<unsigned long long>(r.usersTouched),
        static_cast<unsigned long long>(r.opsCompleted), opsPerSec(r),
        sim::toUs(r.opP50), sim::toUs(r.opP99), sim::toUs(r.opP999),
        static_cast<unsigned long long>(r.rebalances),
        static_cast<unsigned long long>(r.movedKeys),
        static_cast<unsigned long long>(r.stateDigest));
    os << buf;
}

void
writeSummary(std::ostream &os, const std::vector<MixRun> &runs,
             unsigned shards, bool verified)
{
    os << "{\n  \"scenario\": \"cluster-" << shards
       << "shard-bawal\",\n  \"records\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        writeRecord(os, runs[i]);
        os << (i + 1 < runs.size() ? ",\n" : "\n");
    }
    os << "  ],\n  \"thread_identity_verified\": "
       << (verified ? "true" : "false") << "\n}\n";
}

/**
 * The deterministic artifact: everything a byte-compare between a
 * serial and a threaded run should see — per-mix digests, counters,
 * latency percentiles and the full merged metrics snapshot. No wall
 * clock, no thread count.
 */
void
writeArtifact(std::ostream &os, const std::vector<MixRun> &runs)
{
    os << "{\n  \"mixes\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const ClusterResult &r = runs[i].res;
        os << "  {\n    \"mix\": \"" << runs[i].name << "\",\n";
        os << "    \"state_digest\": \"" << std::hex << r.stateDigest
           << std::dec << "\",\n";
        os << "    \"ops_routed\": " << r.opsRouted
           << ",\n    \"ops_completed\": " << r.opsCompleted
           << ",\n    \"users\": " << r.usersTouched
           << ",\n    \"events_fired\": " << r.eventsFired
           << ",\n    \"rounds\": " << r.rounds
           << ",\n    \"messages\": " << r.messages
           << ",\n    \"horizon\": " << r.horizon
           << ",\n    \"op_p50_ticks\": " << r.opP50
           << ",\n    \"op_p99_ticks\": " << r.opP99
           << ",\n    \"op_p999_ticks\": " << r.opP999
           << ",\n    \"rebalances\": " << r.rebalances
           << ",\n    \"moved_keys\": " << r.movedKeys << ",\n";
        os << "    \"metrics\": " << r.metricsJson << ",\n";
        os << "    \"slo_series\": " << r.sloSeriesJson << "\n  }";
        os << (i + 1 < runs.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
}

void
printRow(const MixRun &run)
{
    const ClusterResult &r = run.res;
    std::printf("%-12s %9llu %9llu %12.0f %9.1f %9.1f %9.1f %7llu "
                "%9.1f\n",
                run.name,
                static_cast<unsigned long long>(r.usersTouched),
                static_cast<unsigned long long>(r.opsCompleted),
                opsPerSec(r), sim::toUs(r.opP50), sim::toUs(r.opP99),
                sim::toUs(r.opP999),
                static_cast<unsigned long long>(r.movedKeys),
                run.wallMs);
}

} // namespace

int
main(int argc, char **argv)
{
    bool small = false;
    for (int i = 1; i < argc; ++i)
        small = small || std::string(argv[i]) == "--small";
    const std::string threadsFlag = stringArg(argc, argv, "--threads");
    const std::string queuesFlag = stringArg(argc, argv, "--queues");
    const std::string qdepthFlag = stringArg(argc, argv, "--qdepth");
    const std::string outPath = stringArg(argc, argv, "--out");
    std::string jsonPath = stringArg(argc, argv, "--json");
    const std::string tracePath = stringArg(argc, argv, "--trace");
    if (jsonPath.empty() && outPath.empty())
        jsonPath = "BENCH_cluster.json";

    std::vector<Mix> mixes = makeMixes(small);
    if (!queuesFlag.empty() || !qdepthFlag.empty()) {
        // Multi-queue host frontend: gate each shard's batches behind
        // N bounded queue pairs instead of the unbounded default.
        for (Mix &mix : mixes) {
            if (!queuesFlag.empty()) {
                mix.cfg.nvmeQueuePairs = static_cast<std::uint16_t>(
                    std::max(1ul, std::stoul(queuesFlag)));
            }
            if (!qdepthFlag.empty()) {
                mix.cfg.nvmeQueueDepth = static_cast<std::uint16_t>(
                    std::stoul(qdepthFlag));
            }
        }
    }
    banner("cluster", std::string("sharded serving at scale (") +
                          (small ? "small CI preset" : "1M+ users") +
                          ")");

    std::vector<MixRun> runs;
    bool verified = false;

    if (!threadsFlag.empty()) {
        // Pinned thread count: CI runs this twice (1 and 4) and
        // byte-compares the artifacts.
        const unsigned n =
            std::max(1u, static_cast<unsigned>(std::stoul(threadsFlag)));
        section("mixes at " + threadsFlag + " engine thread(s)");
        for (const Mix &mix : mixes) {
            sim::Tracer tracer;
            const bool wantTrace = small && !tracePath.empty();
            runs.push_back(
                runMix(mix, n, wantTrace ? &tracer : nullptr));
            printRow(runs.back());
            if (wantTrace) {
                std::ofstream ts(tracePath);
                tracer.writeChromeJson(ts);
            }
        }
    } else {
        // The determinism gate: every mix must produce identical
        // digests and metrics at 1, 2 and 8 engine threads before
        // its numbers are reported.
        section("1/2/8-thread identity sweep");
        for (const Mix &mix : mixes) {
            sim::Tracer tracer;
            const bool wantTrace = small && !tracePath.empty();
            MixRun serial =
                runMix(mix, 1, wantTrace ? &tracer : nullptr);
            for (unsigned n : {2u, 8u}) {
                MixRun t = runMix(mix, n, nullptr);
                if (t.res.stateDigest != serial.res.stateDigest ||
                    t.res.metricsJson != serial.res.metricsJson ||
                    t.res.sloSeriesJson != serial.res.sloSeriesJson ||
                    t.res.horizon != serial.res.horizon) {
                    std::fprintf(stderr,
                                 "FAIL: mix %s diverges at %u engine "
                                 "threads\n",
                                 mix.name, n);
                    return 1;
                }
                std::printf("  %-12s %u threads: digest %llx OK "
                            "(wall %.1f ms)\n",
                            mix.name, n,
                            static_cast<unsigned long long>(
                                t.res.stateDigest),
                            t.wallMs);
            }
            if (wantTrace) {
                std::ofstream ts(tracePath);
                tracer.writeChromeJson(ts);
            }
            runs.push_back(std::move(serial));
        }
        verified = true;
    }

    section("cluster throughput and tail latency");
    std::printf("%-12s %9s %9s %12s %9s %9s %9s %7s %9s\n", "mix",
                "users", "ops", "ops/sec", "p50us", "p99us", "p999us",
                "moved", "wall-ms");
    for (const MixRun &run : runs)
        printRow(run);

    if (!small) {
        for (const MixRun &run : runs) {
            if (run.res.usersTouched < 1'000'000) {
                std::fprintf(stderr,
                             "FAIL: mix %s touched only %llu users "
                             "(need >= 1M)\n",
                             run.name,
                             static_cast<unsigned long long>(
                                 run.res.usersTouched));
                return 1;
            }
        }
    }

    if (!jsonPath.empty()) {
        std::ofstream os(jsonPath);
        writeSummary(os, runs, mixes.front().cfg.shards, verified);
        std::printf("\nwrote %s\n", jsonPath.c_str());
    }
    if (!outPath.empty()) {
        std::ofstream os(outPath);
        writeArtifact(os, runs);
        std::printf("wrote %s\n", outPath.c_str());
    }
    return 0;
}
