/**
 * @file
 * Section IV-A claim: BA-WAL reduces the write amplification factor.
 *
 * A conventional WAL rewrites the same partially filled 4 KB log page
 * on every commit, so one logical log byte can be programmed to NAND
 * many times. BA-WAL appends byte-granular records to the BA-buffer
 * and writes each filled page to NAND exactly once via BA_FLUSH.
 *
 * The harness appends the same record stream through both paths and
 * reports NAND pages programmed, bytes written to store, and the
 * resulting WAF, plus the FTL-level WAF counter.
 */

#include <cstdio>
#include <vector>

#include "ba/two_b_ssd.hh"
#include "bench_util.hh"
#include "ssd/ssd_device.hh"
#include "wal/ba_wal.hh"
#include "wal/block_wal.hh"
#include "wal/record.hh"

using namespace bssd;
using namespace bssd::bench;

namespace
{

constexpr std::uint64_t kRecords = 4000;

std::vector<std::uint8_t>
record(std::uint64_t seq, std::size_t payload)
{
    std::vector<std::uint8_t> p(payload, static_cast<std::uint8_t>(seq));
    return wal::frameRecord(seq, p);
}

} // namespace

int
main()
{
    banner("WAF", "write amplification: conventional WAL vs BA-WAL "
                  "(Section IV-A)");

    std::printf("%-8s %-10s %12s %14s %14s %8s\n", "payload", "wal",
                "log bytes", "bytes->store", "NAND pages", "WAF");

    for (std::size_t payload : {64u, 256u, 1024u}) {
        // Conventional: every commit writes the (partial) page again.
        {
            ssd::SsdDevice dev(ssd::SsdConfig::ullSsd());
            wal::BlockWal wal(dev, {});
            sim::Tick t = 0;
            for (std::uint64_t s = 0; s < kRecords; ++s) {
                t = wal.append(t, record(s, payload));
                t = wal.commit(t);
            }
            double waf =
                static_cast<double>(dev.ftl().nandPagesWritten() * 4096) /
                static_cast<double>(wal.bytesAppended());
            std::printf("%-8zu %-10s %12llu %14llu %14llu %8.1f\n",
                        payload, "block",
                        static_cast<unsigned long long>(
                            wal.bytesAppended()),
                        static_cast<unsigned long long>(
                            wal.bytesToStore()),
                        static_cast<unsigned long long>(
                            dev.ftl().nandPagesWritten()),
                        waf);
        }
        // BA-WAL: bytes land in the buffer; NAND sees each page once
        // per BA_FLUSH. Small halves so the stream crosses several.
        {
            ba::TwoBSsd dev;
            wal::BaWalConfig cfg;
            cfg.halfBytes = 256 * sim::KiB;
            wal::BaWal wal(dev, cfg);
            sim::Tick t = sim::msOf(10);
            for (std::uint64_t s = 0; s < kRecords; ++s) {
                t = wal.append(t, record(s, payload));
                t = wal.commit(t);
            }
            double waf =
                static_cast<double>(
                    dev.device().ftl().nandPagesWritten() * 4096) /
                static_cast<double>(wal.bytesAppended());
            std::printf("%-8zu %-10s %12llu %14llu %14llu %8.1f\n",
                        payload, "ba",
                        static_cast<unsigned long long>(
                            wal.bytesAppended()),
                        static_cast<unsigned long long>(
                            wal.bytesToStore()),
                        static_cast<unsigned long long>(
                            dev.device().ftl().nandPagesWritten()),
                        waf);
        }
    }

    std::printf("\npaper: one NAND write per log page for BA-WAL "
                "(WAF ~1 towards the log),\n       vs repeated "
                "partial-page rewrites for the conventional WAL\n");
    return 0;
}
