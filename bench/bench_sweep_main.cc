/**
 * @file
 * Parallel benchmark sweep: the full (device preset × workload ×
 * client count × seed) matrix, executed concurrently on the sweep
 * harness, consolidated into BENCH_sweep.json.
 *
 * Each cell is one self-contained single-threaded simulation, so the
 * numbers are bit-identical to a serial run (tests/workload/
 * test_sweep_determinism.cc asserts this); threads only change how
 * long you wait.
 *
 * Usage: bench_sweep_main [--threads=N] [--quick] [--metrics=FILE]
 *                         [--engine-threads=N]
 *   --threads=N     worker threads (default: hardware concurrency)
 *   --quick         smaller matrix / shorter horizon (CI smoke)
 *   --metrics=FILE  per-cell metric snapshots merged in job order
 *                   (deterministic regardless of worker scheduling)
 *                   and written as one JSON report
 *   --engine-threads=N  ParallelEngine workers INSIDE the sharded-
 *                   cluster cells appended to the matrix (default 1;
 *                   results are bit-identical at any value)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <vector>

#include "bench_rigs.hh"
#include "bench_util.hh"
#include "support/stopwatch.hh"
#include "db/minipg/minipg.hh"
#include "db/miniredis/miniredis.hh"
#include "db/minirocks/minirocks.hh"
#include "sim/report.hh"
#include "sim/sweep.hh"
#include "workload/cluster.hh"
#include "workload/runner.hh"

using namespace bssd;
using namespace bssd::bench;
using namespace bssd::workload;

namespace
{

enum class App
{
    linkbenchPg,
    ycsbaRocks,
    ycsbaRedis,
};

const char *
appName(App a)
{
    switch (a) {
      case App::linkbenchPg: return "linkbench-minipg";
      case App::ycsbaRocks: return "ycsba128-minirocks";
      case App::ycsbaRedis: return "ycsba128-miniredis";
    }
    return "?";
}

struct Cell
{
    RigKind rig;
    App app;
    unsigned clients;
    std::uint64_t seed;
};

sim::SweepRecord
runCell(const Cell &cell, sim::Tick horizon,
        sim::MetricsSnapshot *outMetrics)
{
    Stopwatch sw;

    // Window sizes per app, matching Fig. 9.
    std::uint64_t half = cell.app == App::linkbenchPg ? 4 * sim::MiB
                       : cell.app == App::ycsbaRocks ? 2 * sim::MiB
                                                     : 0;
    bool doubleBuf = cell.app != App::ycsbaRedis;
    LogRig rig = makeRig(cell.rig, half, doubleBuf);

    sim::MetricRegistry registry;
    if (outMetrics)
        rig.registerMetrics(registry, "rig");

    RunResult res;
    switch (cell.app) {
      case App::linkbenchPg: {
        db::minipg::MiniPg pg(*rig.log);
        LinkbenchConfig cfg;
        cfg.nodeCount = 20'000;
        res = runLinkbenchOnPg(pg, cfg, cell.clients, horizon,
                               cell.seed);
        break;
      }
      case App::ycsbaRocks: {
        db::minirocks::MiniRocks db(*rig.log, rig.dataDevice());
        YcsbConfig cfg = ycsbWorkloadA(128);
        cfg.recordCount = 1000;
        sim::Tick loaded = loadRocks(db, cfg, cfg.recordCount);
        res = runYcsbOnRocks(db, cfg, cell.clients, horizon, cell.seed,
                             loaded);
        break;
      }
      case App::ycsbaRedis: {
        db::miniredis::MiniRedis db(*rig.log);
        YcsbConfig cfg = ycsbWorkloadA(128);
        cfg.recordCount = 1000;
        sim::Tick loaded = loadRedis(db, cfg, cfg.recordCount);
        res = runYcsbOnRedis(db, cfg, horizon, cell.seed, loaded);
        break;
      }
    }

    double ms = sw.ms();

    if (outMetrics)
        *outMetrics = registry.snapshot();

    sim::SweepRecord rec;
    rec.device = rigName(cell.rig);
    rec.workload = appName(cell.app);
    rec.clients = cell.clients;
    rec.seed = cell.seed;
    rec.ops = res.ops;
    rec.opsPerSec = res.opsPerSec;
    rec.meanUs = res.meanLatencyUs;
    rec.p99Us = res.p99LatencyUs;
    rec.wallMs = ms;
    rec.eventsPerSec =
        ms > 0.0
            ? static_cast<double>(rig.eventsFired()) / (ms / 1000.0)
            : 0.0;
    return rec;
}

/**
 * One sharded-cluster cell: the multi-domain scenario that exercises
 * the parallel engine inside a single sweep job.
 */
sim::SweepRecord
runClusterCell(workload::ClusterConfig cfg)
{
    Stopwatch sw;
    workload::ClusterResult res = workload::runCluster(cfg);
    double ms = sw.ms();

    sim::SweepRecord rec;
    rec.device = cfg.wal == workload::ClusterConfig::Wal::ba
                     ? "cluster-ba"
                     : "cluster-blk";
    rec.workload = "sharded-miniredis";
    rec.clients = cfg.shards;
    rec.engineThreads = cfg.engineThreads;
    rec.seed = cfg.seed;
    rec.ops = res.opsCompleted;
    rec.opsPerSec = res.horizon > 0
                        ? static_cast<double>(res.opsCompleted) /
                              sim::toSec(res.horizon)
                        : 0.0;
    rec.meanUs = sim::toUs(res.batchP50);
    rec.p99Us = sim::toUs(res.batchP99);
    rec.wallMs = ms;
    rec.eventsPerSec =
        ms > 0.0 ? static_cast<double>(res.eventsFired) / (ms / 1000.0)
                 : 0.0;
    return rec;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    const std::string metricsPath = stringArg(argc, argv, "--metrics");
    unsigned threads = threadsArg(argc, argv);
    if (threads == 0)
        threads = sim::defaultSweepThreads();
    unsigned engineThreads = 1;
    const std::string engineArg =
        stringArg(argc, argv, "--engine-threads");
    if (!engineArg.empty())
        engineThreads =
            static_cast<unsigned>(std::strtoul(engineArg.c_str(),
                                               nullptr, 10));
    if (engineThreads == 0)
        engineThreads = 1;

    const sim::Tick horizon = quick ? sim::msOf(20) : sim::msOf(100);

    std::vector<Cell> cells;
    const std::vector<unsigned> clientCounts =
        quick ? std::vector<unsigned>{4} : std::vector<unsigned>{4, 8};
    const std::vector<std::uint64_t> seeds =
        quick ? std::vector<std::uint64_t>{1}
              : std::vector<std::uint64_t>{1, 2};
    for (RigKind rig :
         {RigKind::dc, RigKind::ull, RigKind::twoB, RigKind::async}) {
        for (App app :
             {App::linkbenchPg, App::ycsbaRocks, App::ycsbaRedis}) {
            for (unsigned clients : clientCounts) {
                // miniredis is single-threaded: one cell per seed.
                if (app == App::ycsbaRedis && clients != clientCounts[0])
                    continue;
                for (std::uint64_t seed : seeds) {
                    cells.push_back(
                        {rig, app,
                         app == App::ycsbaRedis ? 1u : clients, seed});
                }
            }
        }
    }

    // Two sharded-cluster cells (BA-WAL and block-WAL rigs) ride along
    // with the single-device matrix; they are the only cells that use
    // the parallel engine, with --engine-threads workers each.
    std::vector<ClusterConfig> clusterCells;
    for (ClusterConfig::Wal wal :
         {ClusterConfig::Wal::ba, ClusterConfig::Wal::block}) {
        ClusterConfig ccfg;
        ccfg.wal = wal;
        ccfg.engineThreads = engineThreads;
        if (quick) {
            ccfg.cycles = 12;
            ccfg.opsPerCycle = 32;
        }
        clusterCells.push_back(ccfg);
    }

    const std::size_t totalCells = cells.size() + clusterCells.size();
    banner("sweep", "parallel benchmark sweep (" +
                        std::to_string(totalCells) + " cells, " +
                        std::to_string(threads) + " threads)");

    std::vector<sim::SweepRecord> records(totalCells);
    std::vector<sim::MetricsSnapshot> snapshots(cells.size());
    sim::MetricsSnapshot *snaps =
        metricsPath.empty() ? nullptr : snapshots.data();
    std::vector<std::function<void()>> jobs;
    jobs.reserve(totalCells);
    for (std::size_t i = 0; i < cells.size(); ++i)
        jobs.push_back(
            [&records, &cells, i, horizon, snaps] {
                records[i] = runCell(cells[i], horizon,
                                     snaps ? snaps + i : nullptr);
            });
    for (std::size_t i = 0; i < clusterCells.size(); ++i) {
        const std::size_t slot = cells.size() + i;
        jobs.push_back([&records, &clusterCells, i, slot] {
            records[slot] = runClusterCell(clusterCells[i]);
        });
    }

    Stopwatch sw;
    sim::runParallel(jobs, threads);
    double totalMs = sw.ms();

    std::printf("%-9s %-20s %3s %4s %12s %9s %9s %8s\n", "device",
                "workload", "cl", "seed", "ops/s", "mean(us)",
                "p99(us)", "wall ms");
    for (const auto &r : records) {
        std::printf("%-9s %-20s %3u %4llu %12.0f %9.1f %9.1f %8.1f\n",
                    r.device.c_str(), r.workload.c_str(), r.clients,
                    static_cast<unsigned long long>(r.seed), r.opsPerSec,
                    r.meanUs, r.p99Us, r.wallMs);
    }
    std::printf("\ntotal wall-clock: %.1f ms on %u threads\n", totalMs,
                threads);

    std::ofstream os("BENCH_sweep.json");
    sim::writeSweepJson(os, records, threads, totalMs);
    std::printf("wrote BENCH_sweep.json (%zu runs)\n", records.size());

    if (!metricsPath.empty()) {
        // Merge the per-worker snapshots in JOB order, not completion
        // order: the merged report is then a pure function of the cell
        // matrix, bit-identical for any thread count.
        sim::RunReport rep;
        rep.bench = "bench_sweep_main";
        rep.config = std::to_string(cells.size()) + " cells merged";
        for (const auto &s : snapshots)
            rep.metrics.merge(s);
        std::ofstream mos(metricsPath);
        rep.writeJson(mos);
        std::printf("wrote merged metrics report: %s\n",
                    metricsPath.c_str());
    }
    return 0;
}
