/**
 * @file
 * Fig. 8 reproduction: read/write bandwidth vs request size
 * (4 KB - 16 MB) at queue depth one.
 *
 *   - ULL-SSD and DC-SSD: block I/O bandwidth (FIO-style)
 *   - 2B-SSD: INTERNAL datapath bandwidth - BA_PIN for reads and
 *     BA_FLUSH for writes (no host transfer involved)
 *
 * Paper shape (Section V-B): ULL saturates the PCIe Gen3 x4 link at
 * ~3.2 GB/s; the 2B-SSD internal path peaks at ~2.2 GB/s (firmware
 * driven, ~1 GB/s under ULL at >= 4 MB); DC trails on writes by
 * ~700 MB/s and closes the read gap at large sizes.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "ba/two_b_ssd.hh"
#include "bench_util.hh"
#include "ssd/ssd_device.hh"

using namespace bssd;
using namespace bssd::bench;

namespace
{

constexpr std::uint64_t sizes[] = {
    4 * sim::KiB,   16 * sim::KiB,  64 * sim::KiB, 256 * sim::KiB,
    sim::MiB,       4 * sim::MiB,   8 * sim::MiB,  16 * sim::MiB};

double
gbps(std::uint64_t bytes, sim::Tick dur)
{
    return static_cast<double>(bytes) / static_cast<double>(dur);
}

} // namespace

int
main()
{
    banner("Fig. 8", "bandwidth vs request size (QD1)");

    section("(a) read bandwidth [GB/s]");
    std::printf("%-8s %10s %10s %12s\n", "size", "ULL-blk", "DC-blk",
                "2B-internal");
    for (std::uint64_t sz : sizes) {
        // Fresh devices per point: sequential streams warm naturally.
        ssd::SsdDevice ull(ssd::SsdConfig::ullSsd());
        ssd::SsdDevice dc(ssd::SsdConfig::dcSsd());
        ba::BaConfig big;
        big.bufferBytes = 16 * sim::MiB; // allow pinning large ranges
        ba::TwoBSsd twoBLarge(ssd::SsdConfig::ullSsd(), big);

        std::vector<std::uint8_t> data(sz, 7);
        ull.blockWrite(0, 0, data);
        dc.blockWrite(0, 0, data);
        twoBLarge.blockWrite(0, 0, data);

        std::vector<std::uint8_t> out(sz);
        auto u = ull.blockRead(sim::sOf(1), 0, out);
        auto d = dc.blockRead(sim::sOf(1), 0, out);
        auto b = twoBLarge.baPin(sim::sOf(1), 1, 0, 0, sz);
        std::printf("%-8s %10.2f %10.2f %12.2f\n",
                    sizeLabel(sz).c_str(), gbps(sz, u.end - u.start),
                    gbps(sz, d.end - d.start), gbps(sz, b.end - b.start));
    }
    std::printf("paper:   ULL -> 3.2 (PCIe limit); 2B internal ~1 GB/s "
                "under ULL at >=4MB; DC gap closes with size\n");

    section("(b) write bandwidth [GB/s]");
    std::printf("%-8s %10s %10s %12s\n", "size", "ULL-blk", "DC-blk",
                "2B-internal");
    for (std::uint64_t sz : sizes) {
        ssd::SsdDevice ull(ssd::SsdConfig::ullSsd());
        ssd::SsdDevice dc(ssd::SsdConfig::dcSsd());
        ba::BaConfig big;
        big.bufferBytes = 16 * sim::MiB;
        ba::TwoBSsd twoBLarge(ssd::SsdConfig::ullSsd(), big);

        // Sustained: stream enough data to saturate the 64 MiB
        // capacitor-backed buffer, then measure the steady tail.
        std::vector<std::uint8_t> data(sz, 9);
        const int reps = static_cast<int>(std::min<std::uint64_t>(
            2000, std::max<std::uint64_t>(8, 256 * sim::MiB / sz)));
        auto sustained = [&](auto &&write_once) {
            sim::Tick t = 0, t_half = 0;
            for (int i = 0; i < reps; ++i) {
                t = write_once(t, i);
                if (i == reps / 2 - 1)
                    t_half = t;
            }
            return gbps(sz * std::uint64_t(reps - reps / 2), t - t_half);
        };

        double u = sustained([&](sim::Tick t, int i) {
            return ull.blockWrite(t, std::uint64_t(i) * sz, data).end;
        });
        double d = sustained([&](sim::Tick t, int i) {
            return dc.blockWrite(t, std::uint64_t(i) * sz, data).end;
        });
        // 2B series: the figure's metric is one BA_FLUSH of the given
        // size through the internal datapath.
        twoBLarge.baPin(0, 1, 0, 0, sz);
        auto fl = twoBLarge.baFlush(sim::sOf(1), 1);
        double b = gbps(sz, fl.end - fl.start);
        std::printf("%-8s %10.2f %10.2f %12.2f\n",
                    sizeLabel(sz).c_str(), u, d, b);
    }
    std::printf("paper:   ULL -> 3.2; DC -> ~1.5; 2B internal -> ~2.2 "
                "(700 MB/s above DC at >=4MB)\n");
    return 0;
}
