/**
 * @file
 * Fig. 9 reproduction: application-level throughput of minipg
 * (Linkbench), minirocks and miniredis (YCSB-A at several payload
 * sizes) over four log-device configurations:
 *
 *   DC-SSD   - conventional WAL, datacenter SSD
 *   ULL-SSD  - conventional WAL, ultra-low-latency SSD
 *   2B-SSD   - BA-WAL on the 2B-SSD (the paper's contribution)
 *   ASYNC    - asynchronous commit (theoretical maximum, data loss
 *              risk)
 *
 * Paper shape targets (Section V-C):
 *   - 2B-SSD vs DC-SSD: 1.2x - 2.8x; vs ULL-SSD: 1.15x - 2.3x
 *   - 2B-SSD reaches 75-95% of ASYNC
 *   - gains grow as the payload shrinks
 *   - ULL vs DC up to ~1.5x (minirocks, 1 KB); near parity for
 *     the single-threaded miniredis
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "ba/two_b_ssd.hh"
#include "bench_util.hh"
#include "db/minipg/minipg.hh"
#include "db/miniredis/miniredis.hh"
#include "db/minirocks/minirocks.hh"
#include "host/host_memory.hh"
#include "ssd/ssd_device.hh"
#include "wal/async_wal.hh"
#include "wal/ba_wal.hh"
#include "wal/block_wal.hh"
#include "workload/runner.hh"

using namespace bssd;
using namespace bssd::bench;
using namespace bssd::workload;

namespace
{

constexpr unsigned kClients = 8;
constexpr sim::Tick kHorizon = sim::msOf(300);
constexpr std::uint64_t kRecords = 2000;
constexpr std::uint64_t kSeed = 20180601; // ISCA'18

/** A log device plus everything backing it, kept alive together. */
struct LogRig
{
    std::unique_ptr<ssd::SsdDevice> blockDev;
    std::unique_ptr<ba::TwoBSsd> twoB;
    std::unique_ptr<host::PersistentMemory> pm;
    std::unique_ptr<wal::LogDevice> log;
    std::string label;

    /** The device SSTs/manifest live on (for minirocks). */
    ssd::SsdDevice &
    dataDevice()
    {
        return twoB ? twoB->device() : *blockDev;
    }
};

enum class Config { dc, ull, twoB, async };

const char *
configName(Config c)
{
    switch (c) {
      case Config::dc: return "DC-SSD";
      case Config::ull: return "ULL-SSD";
      case Config::twoB: return "2B-SSD";
      case Config::async: return "ASYNC";
    }
    return "?";
}

/**
 * Build a log rig. @p baWalHalf selects the BA-WAL window size
 * (paper: half buffer for minipg, quarter for minirocks, whole for
 * miniredis), and @p doubleBuffer is off for miniredis.
 */
LogRig
makeRig(Config c, std::uint64_t baWalHalf, bool doubleBuffer)
{
    LogRig rig;
    rig.label = configName(c);
    switch (c) {
      case Config::dc:
        rig.blockDev =
            std::make_unique<ssd::SsdDevice>(ssd::SsdConfig::dcSsd());
        rig.log = std::make_unique<wal::BlockWal>(*rig.blockDev,
                                                  wal::BlockWalConfig{});
        break;
      case Config::ull:
        rig.blockDev =
            std::make_unique<ssd::SsdDevice>(ssd::SsdConfig::ullSsd());
        rig.log = std::make_unique<wal::BlockWal>(*rig.blockDev,
                                                  wal::BlockWalConfig{});
        break;
      case Config::twoB: {
        rig.twoB = std::make_unique<ba::TwoBSsd>();
        wal::BaWalConfig wc;
        wc.halfBytes = baWalHalf;
        wc.doubleBuffer = doubleBuffer;
        rig.log = std::make_unique<wal::BaWal>(*rig.twoB, wc);
        break;
      }
      case Config::async:
        rig.blockDev =
            std::make_unique<ssd::SsdDevice>(ssd::SsdConfig::ullSsd());
        rig.log = std::make_unique<wal::AsyncWal>();
        break;
    }
    return rig;
}

void
runPgLinkbench()
{
    section("minipg + Linkbench (normalized to DC-SSD)");
    std::printf("%-10s %12s %10s %10s %10s\n", "config", "txn/s",
                "norm", "mean(us)", "p99(us)");
    double base = 0;
    for (Config c :
         {Config::dc, Config::ull, Config::twoB, Config::async}) {
        auto rig = makeRig(c, 4 * sim::MiB, true);
        db::minipg::MiniPg pg(*rig.log);
        LinkbenchConfig cfg;
        cfg.nodeCount = 50'000;
        auto res = runLinkbenchOnPg(pg, cfg, kClients, kHorizon, kSeed);
        if (base == 0)
            base = res.opsPerSec;
        std::printf("%-10s %12.0f %9.2fx %10.1f %10.1f\n",
                    configName(c), res.opsPerSec, res.opsPerSec / base,
                    res.meanLatencyUs, res.p99LatencyUs);
    }
    std::printf("paper: 2B-SSD gains 1.2-2.8x over DC, 75-95%% of "
                "ASYNC\n");
}

template <typename MakeEngine, typename RunFn>
void
runKv(const char *title, std::uint64_t baWalHalf, bool doubleBuffer,
      MakeEngine make_engine, RunFn run)
{
    section(title);
    std::printf("%-8s %-10s %12s %10s %10s\n", "payload", "config",
                "ops/s", "norm", "mean(us)");
    for (std::uint32_t payload : {16u, 128u, 1024u}) {
        double base = 0;
        for (Config c :
             {Config::dc, Config::ull, Config::twoB, Config::async}) {
            auto rig = makeRig(c, baWalHalf, doubleBuffer);
            auto engine = make_engine(rig);
            YcsbConfig cfg = ycsbWorkloadA(payload);
            cfg.recordCount = kRecords;
            auto res = run(*engine, cfg);
            if (base == 0)
                base = res.opsPerSec;
            std::printf("%-8u %-10s %12.0f %9.2fx %10.1f\n", payload,
                        configName(c), res.opsPerSec,
                        res.opsPerSec / base, res.meanLatencyUs);
        }
    }
}

} // namespace

int
main()
{
    banner("Fig. 9", "application-level throughput "
                     "(DC / ULL / 2B-SSD / ASYNC)");

    runPgLinkbench();

    runKv(
        "minirocks + YCSB-A (normalized to DC-SSD per payload)",
        2 * sim::MiB, true, // log = quarter of the 8 MB BA-buffer
        [](LogRig &rig) {
            return std::make_unique<db::minirocks::MiniRocks>(
                *rig.log, rig.dataDevice());
        },
        [](db::minirocks::MiniRocks &db, const YcsbConfig &cfg) {
            sim::Tick loaded = loadRocks(db, cfg, cfg.recordCount);
            return runYcsbOnRocks(db, cfg, kClients, kHorizon, kSeed,
                                  loaded);
        });

    runKv(
        "miniredis + YCSB-A (normalized to DC-SSD per payload)",
        0 /* whole buffer */, false /* single-threaded: no double buf */,
        [](LogRig &rig) {
            return std::make_unique<db::miniredis::MiniRedis>(*rig.log);
        },
        [](db::miniredis::MiniRedis &db, const YcsbConfig &cfg) {
            sim::Tick loaded = loadRedis(db, cfg, cfg.recordCount);
            return runYcsbOnRedis(db, cfg, kHorizon, kSeed, loaded);
        });

    std::printf("\npaper: gains grow as payload shrinks; ULL/DC up to "
                "~1.5x (minirocks 1KB);\n       miniredis sees ULL "
                "roughly at parity with DC\n");
    return 0;
}
