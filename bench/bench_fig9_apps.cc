/**
 * @file
 * Fig. 9 reproduction: application-level throughput of minipg
 * (Linkbench), minirocks and miniredis (YCSB-A at several payload
 * sizes) over four log-device configurations:
 *
 *   DC-SSD   - conventional WAL, datacenter SSD
 *   ULL-SSD  - conventional WAL, ultra-low-latency SSD
 *   2B-SSD   - BA-WAL on the 2B-SSD (the paper's contribution)
 *   ASYNC    - asynchronous commit (theoretical maximum, data loss
 *              risk)
 *
 * All cells run concurrently on the sweep harness (each rig is
 * self-contained, so numbers are identical to a serial run); pass
 * --threads=1 to force serial execution.
 *
 * Paper shape targets (Section V-C):
 *   - 2B-SSD vs DC-SSD: 1.2x - 2.8x; vs ULL-SSD: 1.15x - 2.3x
 *   - 2B-SSD reaches 75-95% of ASYNC
 *   - gains grow as the payload shrinks
 *   - ULL vs DC up to ~1.5x (minirocks, 1 KB); near parity for
 *     the single-threaded miniredis
 */

#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <vector>

#include "bench_rigs.hh"
#include "bench_util.hh"
#include "db/minipg/minipg.hh"
#include "db/miniredis/miniredis.hh"
#include "db/minirocks/minirocks.hh"
#include "sim/report.hh"
#include "sim/sweep.hh"
#include "sim/trace.hh"
#include "workload/runner.hh"

using namespace bssd;
using namespace bssd::bench;
using namespace bssd::workload;

namespace
{

constexpr unsigned kClients = 8;
constexpr sim::Tick kHorizon = sim::msOf(300);
constexpr std::uint64_t kRecords = 2000;
constexpr std::uint64_t kSeed = 20180601; // ISCA'18

constexpr RigKind kRigs[] = {RigKind::dc, RigKind::ull, RigKind::twoB,
                             RigKind::async};

RunResult
runPgCell(RigKind kind)
{
    auto rig = makeRig(kind, 4 * sim::MiB, true);
    db::minipg::MiniPg pg(*rig.log);
    LinkbenchConfig cfg;
    cfg.nodeCount = 50'000;
    return runLinkbenchOnPg(pg, cfg, kClients, kHorizon, kSeed);
}

RunResult
runRocksCell(RigKind kind, std::uint32_t payload)
{
    auto rig = makeRig(kind, 2 * sim::MiB, true); // quarter buffer
    db::minirocks::MiniRocks db(*rig.log, rig.dataDevice());
    YcsbConfig cfg = ycsbWorkloadA(payload);
    cfg.recordCount = kRecords;
    sim::Tick loaded = loadRocks(db, cfg, cfg.recordCount);
    return runYcsbOnRocks(db, cfg, kClients, kHorizon, kSeed, loaded);
}

RunResult
runRedisCell(RigKind kind, std::uint32_t payload)
{
    // Single-threaded engine: whole buffer, no double buffering.
    auto rig = makeRig(kind, 0, false);
    db::miniredis::MiniRedis db(*rig.log);
    YcsbConfig cfg = ycsbWorkloadA(payload);
    cfg.recordCount = kRecords;
    sim::Tick loaded = loadRedis(db, cfg, cfg.recordCount);
    return runYcsbOnRedis(db, cfg, kHorizon, kSeed, loaded);
}

void
printPg(const std::vector<RunResult> &res)
{
    section("minipg + Linkbench (normalized to DC-SSD)");
    std::printf("%-10s %12s %10s %10s %10s\n", "config", "txn/s",
                "norm", "mean(us)", "p99(us)");
    double base = res[0].opsPerSec;
    for (std::size_t i = 0; i < res.size(); ++i) {
        std::printf("%-10s %12.0f %9.2fx %10.1f %10.1f\n",
                    rigName(kRigs[i]), res[i].opsPerSec,
                    res[i].opsPerSec / base, res[i].meanLatencyUs,
                    res[i].p99LatencyUs);
    }
    std::printf("paper: 2B-SSD gains 1.2-2.8x over DC, 75-95%% of "
                "ASYNC\n");
}

/** @p res is indexed [payload][rig], filled by the parallel phase. */
void
printKv(const char *title,
        const std::vector<std::vector<RunResult>> &res,
        const std::vector<std::uint32_t> &payloads)
{
    section(title);
    std::printf("%-8s %-10s %12s %10s %10s\n", "payload", "config",
                "ops/s", "norm", "mean(us)");
    for (std::size_t p = 0; p < payloads.size(); ++p) {
        double base = res[p][0].opsPerSec;
        for (std::size_t i = 0; i < res[p].size(); ++i) {
            std::printf("%-8u %-10s %12.0f %9.2fx %10.1f\n",
                        payloads[p], rigName(kRigs[i]),
                        res[p][i].opsPerSec,
                        res[p][i].opsPerSec / base,
                        res[p][i].meanLatencyUs);
        }
    }
}

/**
 * One serial traced cell (2B-SSD + minipg) for --trace / --metrics: a
 * tracer is single-threaded per rig, so the parallel phase cannot
 * share one; this dedicated cell runs a shortened Linkbench stream
 * with the full observability stack attached.
 */
void
runTracedCell(const std::string &tracePath,
              const std::string &metricsPath)
{
    auto rig = makeRig(RigKind::twoB, 4 * sim::MiB, true);
    sim::Tracer tracer;
    sim::MetricRegistry registry;
    rig.installTracer(&tracer);
    rig.registerMetrics(registry, "rig");

    db::minipg::MiniPg pg(*rig.log);
    LinkbenchConfig cfg;
    cfg.nodeCount = 50'000;
    runLinkbenchOnPg(pg, cfg, kClients, sim::msOf(50), kSeed);

    if (!tracePath.empty()) {
        std::ofstream os(tracePath);
        tracer.writeChromeJson(os);
        std::printf("\nwrote trace: %s (%zu events, 2B-SSD minipg "
                    "cell)\n",
                    tracePath.c_str(), tracer.events().size());
    }
    if (!metricsPath.empty()) {
        sim::RunReport rep;
        rep.bench = "bench_fig9_apps";
        rep.config = "2B-SSD minipg Linkbench, 8 clients, 50 ms";
        rep.seed = kSeed;
        rep.metrics = registry.snapshot();
        rep.phases = tracer.phaseBreakdown();
        std::ofstream os(metricsPath);
        rep.writeJson(os);
        std::printf("wrote metrics report: %s\n", metricsPath.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Fig. 9", "application-level throughput "
                     "(DC / ULL / 2B-SSD / ASYNC)");

    const std::string tracePath = stringArg(argc, argv, "--trace");
    const std::string metricsPath = stringArg(argc, argv, "--metrics");

    const std::vector<std::uint32_t> payloads = {16, 128, 1024};

    std::vector<RunResult> pg(4);
    std::vector<std::vector<RunResult>> rocks(payloads.size(),
                                              std::vector<RunResult>(4));
    std::vector<std::vector<RunResult>> redis(payloads.size(),
                                              std::vector<RunResult>(4));

    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < 4; ++i)
        jobs.push_back([&pg, i] { pg[i] = runPgCell(kRigs[i]); });
    for (std::size_t p = 0; p < payloads.size(); ++p) {
        for (std::size_t i = 0; i < 4; ++i) {
            jobs.push_back([&rocks, &payloads, p, i] {
                rocks[p][i] = runRocksCell(kRigs[i], payloads[p]);
            });
            jobs.push_back([&redis, &payloads, p, i] {
                redis[p][i] = runRedisCell(kRigs[i], payloads[p]);
            });
        }
    }
    sim::runParallel(jobs, threadsArg(argc, argv));

    printPg(pg);
    printKv("minirocks + YCSB-A (normalized to DC-SSD per payload)",
            rocks, payloads);
    printKv("miniredis + YCSB-A (normalized to DC-SSD per payload)",
            redis, payloads);

    std::printf("\npaper: gains grow as payload shrinks; ULL/DC up to "
                "~1.5x (minirocks 1KB);\n       miniredis sees ULL "
                "roughly at parity with DC\n");

    if (!tracePath.empty() || !metricsPath.empty())
        runTracedCell(tracePath, metricsPath);
    return 0;
}
