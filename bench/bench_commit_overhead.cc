/**
 * @file
 * Section V-C claim: BA-WAL reduces the transaction-commit overhead
 * by up to 26x compared to the conventional logging path.
 *
 * Measures the pure commit cost (append of one record + durability)
 * for each log device at several record sizes.
 */

#include <cstdio>
#include <vector>

#include "ba/two_b_ssd.hh"
#include "bench_util.hh"
#include "host/host_memory.hh"
#include "ssd/ssd_device.hh"
#include "wal/ba_wal.hh"
#include "wal/block_wal.hh"
#include "wal/pm_wal.hh"
#include "wal/record.hh"

using namespace bssd;
using namespace bssd::bench;

namespace
{

/** Append one record then commit; return the total cost in us. */
double
commitCostUs(wal::LogDevice &wal, std::size_t payload, sim::Tick at)
{
    std::vector<std::uint8_t> p(payload, 0x5c);
    auto frame = wal::frameRecord(0, p);
    sim::Tick t = wal.append(at, frame);
    t = wal.commit(t);
    return sim::toUs(t - at);
}

} // namespace

int
main()
{
    banner("Commit overhead",
           "append+commit cost per record (Section V-C: up to 26x)");

    std::printf("%-8s %10s %10s %10s %10s %10s\n", "payload", "DC-blk",
                "ULL-blk", "PM-wal", "BA-wal", "DC/BA");

    for (std::size_t payload : {64u, 256u, 1024u, 4096u}) {
        ssd::SsdDevice dc(ssd::SsdConfig::dcSsd());
        wal::BlockWal dcWal(dc, {});
        ssd::SsdDevice ull(ssd::SsdConfig::ullSsd());
        wal::BlockWal ullWal(ull, {});
        host::PersistentMemory pm;
        ssd::SsdDevice pmDev(ssd::SsdConfig::ullSsd());
        wal::PmWal pmWal(pm, pmDev, {});
        ba::TwoBSsd twoB;
        wal::BaWal baWal(twoB, {});

        // Warm the BA-WAL (its startup BA_PIN prefetch completes in
        // the first milliseconds), then measure in steady state.
        commitCostUs(baWal, payload, sim::msOf(5));
        double dc_us = commitCostUs(dcWal, payload, sim::sOf(1));
        double ull_us = commitCostUs(ullWal, payload, sim::sOf(1));
        double pm_us = commitCostUs(pmWal, payload, sim::sOf(1));
        double ba_us = commitCostUs(baWal, payload, sim::sOf(1));

        std::printf("%-8zu %9.2f %9.2f %9.3f %9.3f %9.1fx\n", payload,
                    dc_us, ull_us, pm_us, ba_us, dc_us / ba_us);
    }

    std::printf("\npaper: commit overhead reduced up to 26x vs the "
                "conventional block-I/O logging path\n");
    return 0;
}
