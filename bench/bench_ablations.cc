/**
 * @file
 * Ablation studies over the 2B-SSD design choices DESIGN.md calls
 * out (Section VI of the paper discusses most of these):
 *
 *  A. Write combining on/off - the paper maps BAR1 write-combining;
 *     without WC every 8-byte store posts its own transaction.
 *  B. Double buffering on/off - the paper's technique for hiding
 *     BA_FLUSH behind ongoing appends.
 *  C. Read-DMA crossover - where offloading beats raw MMIO reads.
 *  D. BA-buffer size sweep - Section VI argues ~8 MB already reaches
 *     the internal-datapath knee; larger buffers add capacity, not
 *     bandwidth.
 *  E. Group commit on/off - why multithreaded engines tolerate slow
 *     flushes better than single-threaded Redis.
 */

#include <cstdio>
#include <vector>

#include "ba/two_b_ssd.hh"
#include "bench_util.hh"
#include "sim/logging.hh"
#include "db/miniredis/miniredis.hh"
#include "ssd/ssd_device.hh"
#include "wal/ba_wal.hh"
#include "wal/block_wal.hh"
#include "wal/group_commit.hh"
#include "wal/record.hh"
#include "workload/runner.hh"

using namespace bssd;
using namespace bssd::bench;

namespace
{

void
ablationWriteCombining()
{
    section("A. write combining (4 KB MMIO write, CPU-visible cost)");
    std::printf("%-18s %12s\n", "mode", "latency(us)");
    std::vector<std::uint8_t> d(4096, 1);

    {
        ba::TwoBSsd dev;
        dev.baPin(0, 1, 0, 0, 4096);
        sim::Tick t0 = sim::msOf(10);
        sim::Tick t = dev.mmioWrite(t0, 0, d);
        t = dev.wc().drainAll(t);
        std::printf("%-18s %12.2f\n", "WC on (64B bursts)",
                    sim::toUs(t - t0));
    }
    {
        // Uncacheable mapping: every 8-byte store is its own posted
        // transaction (burst = 8 B).
        ssd::SsdConfig base = ssd::SsdConfig::ullSsd();
        base.pcieCfg.writeBurstBytes = 8;
        ba::TwoBSsd dev(base);
        dev.baPin(0, 1, 0, 0, 4096);
        sim::Tick t0 = sim::msOf(10);
        sim::Tick t = dev.mmioWrite(t0, 0, d);
        t = dev.wc().drainAll(t);
        std::printf("%-18s %12.2f\n", "UC (8B txns)",
                    sim::toUs(t - t0));
    }
    std::printf("-> WC combining is what makes byte-granular logging "
                "viable\n");
}

void
ablationDoubleBuffer()
{
    section("B. double buffering (sustained BA-WAL append+commit)");
    std::printf("%-18s %12s %14s\n", "mode", "ops/s", "p99 stall(us)");
    for (bool dbl : {true, false}) {
        ba::TwoBSsd dev;
        wal::BaWalConfig cfg;
        cfg.halfBytes = 512 * sim::KiB;
        cfg.regionBytes = 512 * sim::MiB;
        cfg.doubleBuffer = dbl;
        wal::BaWal wal(dev, cfg);
        sim::Tick t = sim::msOf(10);
        sim::Tick start = t;
        sim::Tick worst = 0;
        const int ops = 20000;
        std::vector<std::uint8_t> p(480, 0x3d);
        for (int i = 0; i < ops; ++i) {
            auto frame = wal::frameRecord(static_cast<std::uint64_t>(i),
                                          p);
            sim::Tick t0 = t;
            t = wal.append(t, frame);
            t = wal.commit(t);
            worst = std::max(worst, t - t0);
        }
        double opsps = ops / sim::toSec(t - start);
        std::printf("%-18s %12.0f %14.1f\n",
                    dbl ? "double-buffered" : "single window", opsps,
                    sim::toUs(worst));
    }
    std::printf("-> single window stalls on BA_FLUSH + re-pin at every "
                "boundary\n");
}

void
ablationDmaCrossover()
{
    section("C. read path crossover (MMIO vs read DMA)");
    std::printf("%-8s %12s %12s %8s\n", "size", "mmio(us)", "dma(us)",
                "winner");
    ba::TwoBSsd dev;
    dev.baPin(0, 1, 0, 0, 16 * 4096);
    sim::Tick t = sim::msOf(10);
    for (std::uint64_t sz :
         {256u, 512u, 1024u, 1536u, 2048u, 4096u, 16384u}) {
        std::vector<std::uint8_t> out(sz);
        sim::Tick done = dev.mmioRead(t, 0, out);
        double mmio = sim::toUs(done - t);
        auto iv = dev.baReadDma(t + sim::msOf(1), 1, out);
        double dma = sim::toUs(iv.end - iv.start);
        std::printf("%-8s %12.1f %12.1f %8s\n", sizeLabel(sz).c_str(),
                    mmio, dma, dma < mmio ? "dma" : "mmio");
        t += sim::msOf(10);
    }
    std::printf("-> paper: the engine pays off from ~2 KB\n");
}

void
ablationBufferSize()
{
    section("D. BA-buffer size (BA_FLUSH bandwidth at full-buffer "
            "transfers)");
    std::printf("%-10s %14s %16s\n", "buffer", "flush GB/s",
                "dump within budget");
    for (std::uint64_t mb : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        ba::BaConfig cfg;
        cfg.bufferBytes = mb * sim::MiB;
        ba::TwoBSsd dev(ssd::SsdConfig::ullSsd(), cfg);
        dev.baPin(0, 1, 0, 0, cfg.bufferBytes);
        auto iv = dev.baFlush(sim::sOf(1), 1);
        double gbps = static_cast<double>(cfg.bufferBytes) /
                      static_cast<double>(iv.end - iv.start);
        // Capacitor check on a fresh device (expected to fail for
        // oversized buffers; suppress the warning spam).
        sim::setLogQuiet(true);
        ba::TwoBSsd probe(ssd::SsdConfig::ullSsd(), cfg);
        auto rep = probe.powerLoss(sim::msOf(1));
        sim::setLogQuiet(false);
        std::printf("%4lluMB    %14.2f %16s\n",
                    static_cast<unsigned long long>(mb), gbps,
                    rep.dump.success ? "yes" : "NO");
    }
    std::printf("-> bandwidth saturates by ~8 MB (the paper's choice); "
                "much larger buffers\n   eventually exceed the "
                "capacitor budget\n");
}

void
ablationGroupCommit()
{
    section("E. group commit (8 clients on a DC-SSD block WAL)");
    std::printf("%-18s %12s %10s\n", "mode", "ops/s", "flushes");
    for (bool grouped : {true, false}) {
        ssd::SsdDevice dev(ssd::SsdConfig::dcSsd());
        wal::BlockWal wal(dev, {});
        wal::GroupCommitter gc(wal);
        sim::ClosedLoopDriver driver;
        std::uint64_t seq = 0;
        for (int c = 0; c < 8; ++c) {
            driver.addClient([&, grouped](sim::Clock &clock) {
                std::vector<std::uint8_t> p(100, 2);
                auto frame = wal::frameRecord(seq++, p);
                sim::Tick t = clock.now();
                t = wal.append(t, frame);
                t = grouped ? gc.commit(t) : wal.commit(t);
                clock.advanceTo(t);
            });
        }
        auto ops = driver.run(sim::msOf(200));
        std::printf("%-18s %12.0f %10llu\n",
                    grouped ? "group commit" : "commit per txn",
                    driver.throughputOpsPerSec(),
                    static_cast<unsigned long long>(
                        dev.flushesServed()));
        (void)ops;
    }
    std::printf("-> grouping amortizes the flush; Redis (single "
                "thread) cannot do this\n");
}

} // namespace

int
main()
{
    banner("Ablations", "design-choice studies (Section VI)");
    ablationWriteCombining();
    ablationDoubleBuffer();
    ablationDmaCrossover();
    ablationBufferSize();
    ablationGroupCommit();
    return 0;
}
