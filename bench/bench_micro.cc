/**
 * @file
 * google-benchmark micro suite over the simulator's hot paths.
 *
 * Unlike the figure benches (which report SIMULATED time), this
 * binary measures the WALL-CLOCK cost of the model itself - useful
 * when deciding how long an experiment horizon is affordable and for
 * catching performance regressions in the simulator.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "ba/two_b_ssd.hh"
#include "db/miniredis/miniredis.hh"
#include "ftl/ftl.hh"
#include "nand/nand_flash.hh"
#include "sim/rng.hh"
#include "ssd/ssd_device.hh"
#include "wal/ba_wal.hh"
#include "wal/record.hh"

using namespace bssd;

namespace
{

void
BM_RngNext(benchmark::State &state)
{
    sim::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_ZipfianSample(benchmark::State &state)
{
    sim::Rng rng(1);
    sim::Zipfian z(1'000'000, 0.99);
    for (auto _ : state)
        benchmark::DoNotOptimize(z.sample(rng));
}
BENCHMARK(BM_ZipfianSample);

void
BM_Crc32c(benchmark::State &state)
{
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(state.range(0)), 0x5a);
    for (auto _ : state)
        benchmark::DoNotOptimize(wal::crc32c(data));
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(1024)->Arg(4096);

void
BM_FtlWrite4k(benchmark::State &state)
{
    nand::NandFlash flash(nand::NandConfig::slcUltraLowLatency());
    ftl::Ftl ftl(flash);
    std::vector<std::uint8_t> page(4096, 1);
    sim::Tick t = 0;
    ftl::Lpn lpn = 0;
    for (auto _ : state) {
        t = ftl.write(t, lpn, 1, page).end;
        lpn = (lpn + 1) % 100000;
    }
}
BENCHMARK(BM_FtlWrite4k);

void
BM_BlockWrite4k(benchmark::State &state)
{
    ssd::SsdDevice dev(ssd::SsdConfig::ullSsd());
    std::vector<std::uint8_t> page(4096, 1);
    sim::Tick t = 0;
    std::uint64_t off = 0;
    for (auto _ : state) {
        t = dev.blockWrite(t, off, page).end;
        off = (off + 4096) % (sim::GiB);
    }
}
BENCHMARK(BM_BlockWrite4k);

void
BM_MmioWrite128(benchmark::State &state)
{
    ba::TwoBSsd dev;
    dev.baPin(0, 1, 0, 0, 4 * sim::MiB);
    std::vector<std::uint8_t> d(128, 1);
    sim::Tick t = sim::msOf(10);
    std::uint64_t off = 0;
    for (auto _ : state) {
        t = dev.mmioWrite(t, off, d);
        t = dev.baSyncRange(t, 1, off, d.size());
        off = (off + 128) % (4 * sim::MiB - 128);
    }
}
BENCHMARK(BM_MmioWrite128);

void
BM_BaWalAppendCommit(benchmark::State &state)
{
    ba::TwoBSsd dev;
    wal::BaWalConfig cfg;
    cfg.regionBytes = 4 * sim::GiB;
    wal::BaWal wal(dev, cfg);
    std::vector<std::uint8_t> p(
        static_cast<std::size_t>(state.range(0)), 2);
    sim::Tick t = sim::msOf(10);
    std::uint64_t seq = 0;
    for (auto _ : state) {
        auto frame = wal::frameRecord(seq++, p);
        t = wal.append(t, frame);
        t = wal.commit(t);
    }
}
BENCHMARK(BM_BaWalAppendCommit)->Arg(64)->Arg(1024);

void
BM_RedisSetOn2b(benchmark::State &state)
{
    ba::TwoBSsd dev;
    wal::BaWalConfig cfg;
    cfg.regionBytes = 4 * sim::GiB;
    cfg.doubleBuffer = false;
    wal::BaWal aof(dev, cfg);
    db::miniredis::MiniRedis r(aof);
    std::vector<std::uint8_t> v(100, 1);
    sim::Tick t = sim::msOf(10);
    std::uint64_t i = 0;
    for (auto _ : state)
        t = r.set(t, "key" + std::to_string(i++ % 10000), v);
}
BENCHMARK(BM_RedisSetOn2b);

} // namespace

BENCHMARK_MAIN();
