/**
 * @file
 * The ONE wall-clock site of the tree (DESIGN.md section 11).
 *
 * Simulated results must never depend on the host clock, so bssd-lint
 * (det-wallclock) bans <chrono> and friends everywhere except this
 * shim. Benchmarks use a Stopwatch to measure how long the simulator
 * itself takes (events/sec, wall ms per cell); nothing read from it
 * may feed back into simulated state.
 */

#ifndef BSSD_BENCH_SUPPORT_STOPWATCH_HH
#define BSSD_BENCH_SUPPORT_STOPWATCH_HH

#include <chrono>

namespace bssd::bench
{

/** Monotonic wall-clock stopwatch; starts running on construction. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    /** Restart the epoch. */
    void restart() { start_ = std::chrono::steady_clock::now(); }

    /** Wall milliseconds since construction / last restart(). */
    double
    ms() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    /** Wall seconds since construction / last restart(). */
    double sec() const { return ms() / 1e3; }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace bssd::bench

#endif // BSSD_BENCH_SUPPORT_STOPWATCH_HH
