/**
 * @file
 * Shared log-device rigs for the application-level benches.
 *
 * Fig. 9, Fig. 10 and the sweep harness all compare the same four
 * log-device configurations (DC-SSD, ULL-SSD, 2B-SSD, ASYNC); this
 * header owns the rig construction so every binary builds them
 * identically. Each rig is fully self-contained (own device, own
 * event queue, own RNG streams), which is what lets the sweep harness
 * run rigs on concurrent worker threads with bit-identical results.
 */

#ifndef BSSD_BENCH_BENCH_RIGS_HH
#define BSSD_BENCH_BENCH_RIGS_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "ba/two_b_ssd.hh"
#include "host/host_memory.hh"
#include "ssd/ssd_device.hh"
#include "wal/async_wal.hh"
#include "wal/ba_wal.hh"
#include "wal/block_wal.hh"

namespace bssd::bench
{

/** The four log-device configurations of Figs. 9/10. */
enum class RigKind
{
    dc,
    ull,
    twoB,
    async,
};

inline const char *
rigName(RigKind k)
{
    switch (k) {
      case RigKind::dc: return "DC-SSD";
      case RigKind::ull: return "ULL-SSD";
      case RigKind::twoB: return "2B-SSD";
      case RigKind::async: return "ASYNC";
    }
    return "?";
}

/** A log device plus everything backing it, kept alive together. */
struct LogRig
{
    std::unique_ptr<ssd::SsdDevice> blockDev;
    std::unique_ptr<ba::TwoBSsd> twoB;
    std::unique_ptr<host::PersistentMemory> pm;
    std::unique_ptr<wal::LogDevice> log;
    std::string label;

    /** The device SSTs/manifest live on (for minirocks). */
    ssd::SsdDevice &
    dataDevice()
    {
        return twoB ? twoB->device() : *blockDev;
    }

    /** Simulation events fired by the rig's device (0 if none). */
    std::uint64_t
    eventsFired() const
    {
        return twoB ? twoB->events().totalFired() : 0;
    }
};

/**
 * Build a log rig. @p baWalHalf selects the BA-WAL window size
 * (paper: half buffer for minipg, quarter for minirocks, whole for
 * miniredis), and @p doubleBuffer is off for miniredis.
 */
inline LogRig
makeRig(RigKind k, std::uint64_t baWalHalf, bool doubleBuffer)
{
    LogRig rig;
    rig.label = rigName(k);
    switch (k) {
      case RigKind::dc:
        rig.blockDev =
            std::make_unique<ssd::SsdDevice>(ssd::SsdConfig::dcSsd());
        rig.log = std::make_unique<wal::BlockWal>(*rig.blockDev,
                                                  wal::BlockWalConfig{});
        break;
      case RigKind::ull:
        rig.blockDev =
            std::make_unique<ssd::SsdDevice>(ssd::SsdConfig::ullSsd());
        rig.log = std::make_unique<wal::BlockWal>(*rig.blockDev,
                                                  wal::BlockWalConfig{});
        break;
      case RigKind::twoB: {
        rig.twoB = std::make_unique<ba::TwoBSsd>();
        wal::BaWalConfig wc;
        wc.halfBytes = baWalHalf;
        wc.doubleBuffer = doubleBuffer;
        rig.log = std::make_unique<wal::BaWal>(*rig.twoB, wc);
        break;
      }
      case RigKind::async:
        rig.blockDev =
            std::make_unique<ssd::SsdDevice>(ssd::SsdConfig::ullSsd());
        rig.log = std::make_unique<wal::AsyncWal>();
        break;
    }
    return rig;
}

/** Parse an optional `--threads=N` argument (0 = auto). */
inline unsigned
threadsArg(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--threads=", 0) != 0)
            continue;
        std::string v = a.substr(a.find('=') + 1);
        unsigned n = 0;
        if (v.empty() || v.find_first_not_of("0123456789") !=
                             std::string::npos) {
            std::fprintf(stderr,
                         "error: --threads expects a number, got "
                         "'%s'\n",
                         v.c_str());
            std::exit(2);
        }
        for (char c : v)
            n = n * 10 + static_cast<unsigned>(c - '0');
        return n;
    }
    return 0;
}

} // namespace bssd::bench

#endif // BSSD_BENCH_BENCH_RIGS_HH
