/**
 * @file
 * Shared log-device rigs for the application-level benches.
 *
 * Fig. 9, Fig. 10 and the sweep harness all compare the same four
 * log-device configurations (DC-SSD, ULL-SSD, 2B-SSD, ASYNC). Rig
 * construction itself lives in tests/support/rig.hh (shared with the
 * crash matrix and the fault-injection campaign, so repro lines are
 * replayable everywhere); this header maps the bench-facing RigKind
 * onto those specs and keeps the CLI helpers.
 */

#ifndef BSSD_BENCH_BENCH_RIGS_HH
#define BSSD_BENCH_BENCH_RIGS_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "../tests/support/rig.hh"

namespace bssd::bench
{

/** The four log-device configurations of Figs. 9/10. */
enum class RigKind
{
    dc,
    ull,
    twoB,
    async,
};

inline const char *
rigName(RigKind k)
{
    switch (k) {
      case RigKind::dc: return "DC-SSD";
      case RigKind::ull: return "ULL-SSD";
      case RigKind::twoB: return "2B-SSD";
      case RigKind::async: return "ASYNC";
    }
    return "?";
}

/** A log device plus everything backing it, kept alive together. */
using LogRig = rigs::Rig;

/**
 * Build a log rig. @p baWalHalf selects the BA-WAL window size
 * (paper: half buffer for minipg, quarter for minirocks, whole for
 * miniredis), and @p doubleBuffer is off for miniredis.
 */
inline LogRig
makeRig(RigKind k, std::uint64_t baWalHalf, bool doubleBuffer)
{
    rigs::RigSpec spec;
    spec.device = rigs::RigSpec::Device::ull;
    switch (k) {
      case RigKind::dc:
        spec.wal = rigs::WalKind::block;
        spec.device = rigs::RigSpec::Device::dc;
        break;
      case RigKind::ull:
        spec.wal = rigs::WalKind::block;
        break;
      case RigKind::twoB:
        spec.wal = doubleBuffer ? rigs::WalKind::ba
                                : rigs::WalKind::baSingle;
        spec.halfBytes = baWalHalf;
        break;
      case RigKind::async:
        spec.wal = rigs::WalKind::async;
        break;
    }
    LogRig rig = rigs::makeRig(spec);
    rig.label = rigName(k);
    return rig;
}

/** Parse an optional `--threads=N` argument (0 = auto). */
inline unsigned
threadsArg(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--threads=", 0) != 0)
            continue;
        std::string v = a.substr(a.find('=') + 1);
        unsigned n = 0;
        if (v.empty() || v.find_first_not_of("0123456789") !=
                             std::string::npos) {
            std::fprintf(stderr,
                         "error: --threads expects a number, got "
                         "'%s'\n",
                         v.c_str());
            std::exit(2);
        }
        for (char c : v)
            n = n * 10 + static_cast<unsigned>(c - '0');
        return n;
    }
    return 0;
}

} // namespace bssd::bench

#endif // BSSD_BENCH_BENCH_RIGS_HH
