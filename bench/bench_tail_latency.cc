/**
 * @file
 * Tail-latency experiments.
 *
 * Part 1 (Section IV-A: BA-WAL "optimizes both tail latencies and SSD
 * lifespan"): sustained single-threaded commits on each log device;
 * reports the mean / p99 / max commit latency. The conventional WAL's
 * tail comes from write+fsync queueing; BA-WAL's only outliers are the
 * (double-buffered, hence rare and tiny) half switches.
 *
 * Part 2 (DESIGN.md section 10): foreground vs background GC ablation.
 * A write-through SSD is driven with sustained random 4 KiB
 * overwrites until garbage collection dominates; the foreground cell
 * stalls the triggering write for a whole multi-block GC episode while
 * the background cell amortizes the same reclamation into
 * rate-controlled steps, which is where the p99/p99.9 gap comes from.
 * Deterministic (fixed seed, no wall clock): the JSON emitted via
 * --out is byte-stable and diffed against
 * baselines/BENCH_tail_latency.json by the nightly workflow. --check
 * exits non-zero unless background GC beats foreground at p99.9.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <vector>

#include "ba/two_b_ssd.hh"
#include "bench_util.hh"
#include "host/host_memory.hh"
#include "ssd/ssd_device.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "wal/ba_wal.hh"
#include "wal/block_wal.hh"
#include "wal/pm_wal.hh"
#include "wal/record.hh"

using namespace bssd;
using namespace bssd::bench;

namespace
{

constexpr int kOps = 30000;
constexpr std::size_t kPayload = 300;

void
measure(const char *name, wal::LogDevice &wal)
{
    sim::Distribution lat("commit");
    std::vector<std::uint8_t> p(kPayload, 0x7a);
    sim::Tick t = sim::msOf(10);
    for (int i = 0; i < kOps; ++i) {
        auto frame = wal::frameRecord(static_cast<std::uint64_t>(i), p);
        sim::Tick t0 = t;
        t = wal.append(t, frame);
        t = wal.commit(t);
        lat.sample(t - t0);
    }
    std::printf("%-12s %10.2f %10.2f %10.2f\n", name, lat.mean() / 1e3,
                static_cast<double>(lat.percentile(99)) / 1e3,
                static_cast<double>(lat.max()) / 1e3);
}

/** @name Foreground-vs-background GC ablation @{ */

constexpr int kGcOps = 30000;
/** Hot span of logical pages the overwrites cycle through. */
constexpr std::uint64_t kGcSpanPages = 2000;
/** Host think time between writes (lets idle catch-up steps run). */
constexpr sim::Tick kGcThink = sim::usOf(2);

ssd::SsdConfig
gcAblationConfig(bool background)
{
    // ULL-class timing on a deliberately small array (4 dies x 64
    // blocks x 32 pages) so 30k overwrites push the FTL through many
    // full GC cycles in milliseconds of simulated time.
    ssd::SsdConfig cfg = ssd::SsdConfig::ullSsd();
    cfg.name = background ? "bg-gc" : "fg-gc";
    cfg.nandCfg.geometry = nand::NandGeometry{2, 2, 64, 32, 4096};
    cfg.readAhead = false;
    // FUA-style completion: the host observes the destage (and any GC
    // stall charged to it) instead of just the buffer admission.
    cfg.writeThrough = true;
    cfg.writeBufferBytes = 2 * sim::MiB;
    cfg.ftlCfg.gcLowWaterBlocks = 4;
    cfg.ftlCfg.gcHighWaterBlocks = 12;
    cfg.ftlCfg.backgroundGc = background;
    cfg.nandCfg.sched.readPriority = background;
    cfg.nandCfg.sched.eraseSuspend = background;
    return cfg;
}

struct GcCell
{
    sim::Distribution lat{"write", 65536};
    std::uint64_t gcSteps = 0;
    std::uint64_t gcPauses = 0;
    double waf = 0.0;
};

GcCell
runGcCell(bool background)
{
    ssd::SsdDevice dev(gcAblationConfig(background));
    GcCell cell;
    sim::Rng rng(0x6c0ffee);
    std::vector<std::uint8_t> page(4096);
    sim::Tick t = sim::msOf(1);
    for (int i = 0; i < kGcOps; ++i) {
        std::uint64_t lpn = rng.nextBelow(kGcSpanPages);
        std::memset(page.data(), static_cast<int>(i & 0xff), page.size());
        auto iv = dev.blockWrite(t, lpn * 4096, page);
        cell.lat.sample(iv.end - t);
        t = iv.end + kGcThink;
    }
    cell.gcSteps = dev.ftl().gcBackgroundSteps();
    cell.gcPauses = dev.ftl().gcPauses().count();
    cell.waf = dev.ftl().waf();
    return cell;
}

void
printGcRow(const char *name, const GcCell &c)
{
    std::printf("%-12s %10.2f %10.2f %12.2f %10.2f %9llu %9llu %6.2f\n",
                name, c.lat.mean() / 1e3,
                static_cast<double>(c.lat.percentile(99)) / 1e3,
                static_cast<double>(c.lat.percentile(99.9)) / 1e3,
                static_cast<double>(c.lat.max()) / 1e3,
                static_cast<unsigned long long>(c.gcSteps),
                static_cast<unsigned long long>(c.gcPauses), c.waf);
}

void
writeGcJson(std::ostream &os, const GcCell &fg, const GcCell &bg)
{
    auto cell = [&](const char *name, const GcCell &c, const char *sep) {
        os << "    \"" << name << "\": {"
           << "\"ops\": " << kGcOps
           << ", \"mean_ticks\": "
           << static_cast<std::uint64_t>(c.lat.mean())
           << ", \"p99_ticks\": " << c.lat.percentile(99)
           << ", \"p999_ticks\": " << c.lat.percentile(99.9)
           << ", \"max_ticks\": " << c.lat.max()
           << ", \"gc_steps\": " << c.gcSteps
           << ", \"gc_pauses\": " << c.gcPauses << "}" << sep << "\n";
    };
    const double ratio =
        static_cast<double>(bg.lat.percentile(99.9)) /
        static_cast<double>(fg.lat.percentile(99.9));
    char ratio_s[32];
    std::snprintf(ratio_s, sizeof(ratio_s), "%.4f", ratio);
    os << "{\n"
       << "  \"bench\": \"bench_tail_latency\",\n"
       << "  \"gc_ablation\": {\n";
    cell("foreground", fg, ",");
    cell("background", bg, ",");
    os << "    \"p999_bg_over_fg\": " << ratio_s << "\n"
       << "  }\n"
       << "}\n";
}

/**
 * Record a shorter background-GC run with the tracer installed, so
 * `trace_dump --breakdown FILE` shows ftl.gc_step relocate/erase
 * phases interleaved with the host write spans, and
 * `trace_dump --validate FILE` reconciles them.
 */
void
traceGcCell(const std::string &path)
{
    ssd::SsdDevice dev(gcAblationConfig(true));
    sim::Rng rng(0x6c0ffee);
    std::vector<std::uint8_t> page(4096);
    sim::Tick t = sim::msOf(1);
    // Untraced prefill: burn through the free pool so the traced
    // window starts with garbage collection already active.
    for (int i = 0;
         dev.ftl().freeBlocks() >
             gcAblationConfig(true).ftlCfg.gcHighWaterBlocks &&
         i < 20000;
         ++i) {
        std::uint64_t lpn = rng.nextBelow(kGcSpanPages);
        auto iv = dev.blockWrite(t, lpn * 4096, page);
        t = iv.end + kGcThink;
    }
    sim::Tracer tracer;
    dev.setTracer(&tracer);
    for (int i = 0; i < 3000; ++i) {
        std::uint64_t lpn = rng.nextBelow(kGcSpanPages);
        std::memset(page.data(), static_cast<int>(i & 0xff), page.size());
        auto iv = dev.blockWrite(t, lpn * 4096, page);
        t = iv.end + kGcThink;
    }
    std::ofstream os(path);
    tracer.writeChromeJson(os);
    std::printf("wrote %s (%zu events)\n", path.c_str(),
                tracer.events().size());
}

/** @} */

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--check")
            check = true;
    const std::string out = stringArg(argc, argv, "--out");

    banner("Tail latency",
           "sustained commit latency: mean / p99 / max [us]");
    std::printf("%-12s %10s %10s %10s\n", "config", "mean", "p99",
                "max");

    {
        ssd::SsdDevice dev(ssd::SsdConfig::dcSsd());
        wal::BlockWal wal(dev, {});
        measure("DC-SSD", wal);
    }
    {
        ssd::SsdDevice dev(ssd::SsdConfig::ullSsd());
        wal::BlockWal wal(dev, {});
        measure("ULL-SSD", wal);
    }
    {
        ba::TwoBSsd dev;
        wal::BaWalConfig cfg;
        cfg.regionBytes = 512 * sim::MiB;
        wal::BaWal wal(dev, cfg);
        measure("2B-SSD", wal);
    }
    {
        ba::TwoBSsd dev;
        wal::BaWalConfig cfg;
        cfg.regionBytes = 512 * sim::MiB;
        cfg.doubleBuffer = false;
        wal::BaWal wal(dev, cfg);
        measure("2B-single", wal);
    }
    {
        host::PersistentMemory pm;
        ssd::SsdDevice dev(ssd::SsdConfig::ullSsd());
        wal::PmWalConfig cfg;
        cfg.regionBytes = 512 * sim::MiB;
        wal::PmWal wal(pm, dev, cfg);
        measure("PM+ULL", wal);
    }

    std::printf("\npaper: a single NAND write per log page optimizes "
                "tail latencies (and WAF);\ndouble buffering keeps the "
                "p99/max tail flat where the single window spikes\n"
                "on every BA_FLUSH + re-pin.\n");

    section("GC ablation: foreground vs background "
            "(write-through random 4K overwrites) [us]");
    std::printf("%-12s %10s %10s %12s %10s %9s %9s %6s\n", "gc mode",
                "mean", "p99", "p99.9", "max", "gc_steps", "fg_gcs",
                "waf");
    GcCell fg = runGcCell(false);
    GcCell bg = runGcCell(true);
    printGcRow("foreground", fg);
    printGcRow("background", bg);
    std::printf("\nbackground GC relocates in %u-page steps between "
                "host writes, so a write never\nabsorbs a whole "
                "multi-block episode; the foreground tail is the full "
                "reclaim stall.\n",
                gcAblationConfig(true).ftlCfg.gcStepPages);

    if (!out.empty()) {
        std::ofstream os(out);
        writeGcJson(os, fg, bg);
        std::printf("wrote %s\n", out.c_str());
    }
    const std::string trace = stringArg(argc, argv, "--trace");
    if (!trace.empty())
        traceGcCell(trace);
    if (check) {
        if (bg.lat.percentile(99.9) >= fg.lat.percentile(99.9)) {
            std::fprintf(stderr,
                         "FAIL: background GC p99.9 (%llu) not below "
                         "foreground (%llu)\n",
                         static_cast<unsigned long long>(
                             bg.lat.percentile(99.9)),
                         static_cast<unsigned long long>(
                             fg.lat.percentile(99.9)));
            return 1;
        }
        std::printf("check: background p99.9 < foreground p99.9 OK\n");
    }
    return 0;
}
