/**
 * @file
 * Tail-latency comparison (Section IV-A: BA-WAL "optimizes both tail
 * latencies and SSD lifespan").
 *
 * Sustained single-threaded commits on each log device; reports the
 * mean / p99 / max commit latency. The conventional WAL's tail comes
 * from write+fsync queueing; BA-WAL's only outliers are the (double-
 * buffered, hence rare and tiny) half switches.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "ba/two_b_ssd.hh"
#include "bench_util.hh"
#include "host/host_memory.hh"
#include "ssd/ssd_device.hh"
#include "sim/stats.hh"
#include "wal/ba_wal.hh"
#include "wal/block_wal.hh"
#include "wal/pm_wal.hh"
#include "wal/record.hh"

using namespace bssd;
using namespace bssd::bench;

namespace
{

constexpr int kOps = 30000;
constexpr std::size_t kPayload = 300;

void
measure(const char *name, wal::LogDevice &wal)
{
    sim::Distribution lat("commit");
    std::vector<std::uint8_t> p(kPayload, 0x7a);
    sim::Tick t = sim::msOf(10);
    for (int i = 0; i < kOps; ++i) {
        auto frame = wal::frameRecord(static_cast<std::uint64_t>(i), p);
        sim::Tick t0 = t;
        t = wal.append(t, frame);
        t = wal.commit(t);
        lat.sample(t - t0);
    }
    std::printf("%-12s %10.2f %10.2f %10.2f\n", name, lat.mean() / 1e3,
                static_cast<double>(lat.percentile(99)) / 1e3,
                static_cast<double>(lat.max()) / 1e3);
}

} // namespace

int
main()
{
    banner("Tail latency",
           "sustained commit latency: mean / p99 / max [us]");
    std::printf("%-12s %10s %10s %10s\n", "config", "mean", "p99",
                "max");

    {
        ssd::SsdDevice dev(ssd::SsdConfig::dcSsd());
        wal::BlockWal wal(dev, {});
        measure("DC-SSD", wal);
    }
    {
        ssd::SsdDevice dev(ssd::SsdConfig::ullSsd());
        wal::BlockWal wal(dev, {});
        measure("ULL-SSD", wal);
    }
    {
        ba::TwoBSsd dev;
        wal::BaWalConfig cfg;
        cfg.regionBytes = 512 * sim::MiB;
        wal::BaWal wal(dev, cfg);
        measure("2B-SSD", wal);
    }
    {
        ba::TwoBSsd dev;
        wal::BaWalConfig cfg;
        cfg.regionBytes = 512 * sim::MiB;
        cfg.doubleBuffer = false;
        wal::BaWal wal(dev, cfg);
        measure("2B-single", wal);
    }
    {
        host::PersistentMemory pm;
        ssd::SsdDevice dev(ssd::SsdConfig::ullSsd());
        wal::PmWalConfig cfg;
        cfg.regionBytes = 512 * sim::MiB;
        wal::PmWal wal(pm, dev, cfg);
        measure("PM+ULL", wal);
    }

    std::printf("\npaper: a single NAND write per log page optimizes "
                "tail latencies (and WAF);\ndouble buffering keeps the "
                "p99/max tail flat where the single window spikes\n"
                "on every BA_FLUSH + re-pin.\n");
    return 0;
}
