/**
 * @file
 * Fig. 10 reproduction: heterogeneous memory architecture vs the
 * hybrid store, on minipg + Linkbench.
 *
 *   baseline (2B-SSD) - BA-WAL on the hybrid store
 *   PM + ULL-SSD      - WAL buffered in host PM, lazily destaged to a
 *                       ULL-SSD log device
 *   PM + DC-SSD       - same with a DC-SSD log device
 *   ASYNC             - asynchronous commit upper bound
 *
 * Paper result (Section V-C): all four are nearly identical - PM+DC
 * about 0.6% BELOW and PM+ULL about 0.4% ABOVE the 2B-SSD baseline,
 * all close to ASYNC. The point: the hybrid store matches the
 * heterogeneous memory architecture without spending a DIMM slot.
 */

#include <cstdio>
#include <memory>

#include "ba/two_b_ssd.hh"
#include "bench_util.hh"
#include "db/minipg/minipg.hh"
#include "host/host_memory.hh"
#include "ssd/ssd_device.hh"
#include "wal/async_wal.hh"
#include "wal/ba_wal.hh"
#include "wal/pm_wal.hh"
#include "workload/runner.hh"

using namespace bssd;
using namespace bssd::bench;
using namespace bssd::workload;

namespace
{

constexpr unsigned kClients = 8;
constexpr sim::Tick kHorizon = sim::msOf(300);
constexpr std::uint64_t kSeed = 20180601;

double
run(wal::LogDevice &log)
{
    db::minipg::MiniPg pg(log);
    LinkbenchConfig cfg;
    cfg.nodeCount = 50'000;
    return runLinkbenchOnPg(pg, cfg, kClients, kHorizon, kSeed)
        .opsPerSec;
}

} // namespace

int
main()
{
    banner("Fig. 10",
           "heterogeneous memory vs hybrid store (minipg + Linkbench)");

    std::printf("%-14s %12s %12s\n", "config", "txn/s", "vs baseline");

    double base;
    {
        ba::TwoBSsd dev;
        wal::BaWal log(dev, {});
        base = run(log);
        std::printf("%-14s %12.0f %11.2f%%\n", "2B-SSD", base, 0.0);
    }
    {
        host::PersistentMemory pm;
        ssd::SsdDevice dev(ssd::SsdConfig::ullSsd());
        wal::PmWal log(pm, dev, {});
        double v = run(log);
        std::printf("%-14s %12.0f %+11.2f%%\n", "PM + ULL-SSD", v,
                    (v / base - 1.0) * 100.0);
    }
    {
        host::PersistentMemory pm;
        ssd::SsdDevice dev(ssd::SsdConfig::dcSsd());
        wal::PmWal log(pm, dev, {});
        double v = run(log);
        std::printf("%-14s %12.0f %+11.2f%%\n", "PM + DC-SSD", v,
                    (v / base - 1.0) * 100.0);
    }
    {
        wal::AsyncWal log;
        double v = run(log);
        std::printf("%-14s %12.0f %+11.2f%%\n", "ASYNC", v,
                    (v / base - 1.0) * 100.0);
    }

    std::printf("\npaper: PM+DC ~ -0.6%%, PM+ULL ~ +0.4%%, all close "
                "to ASYNC -\n       the hybrid store equals a "
                "battery-backed DIMM without the DIMM slot\n");
    return 0;
}
