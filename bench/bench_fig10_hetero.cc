/**
 * @file
 * Fig. 10 reproduction: heterogeneous memory architecture vs the
 * hybrid store, on minipg + Linkbench.
 *
 *   baseline (2B-SSD) - BA-WAL on the hybrid store
 *   PM + ULL-SSD      - WAL buffered in host PM, lazily destaged to a
 *                       ULL-SSD log device
 *   PM + DC-SSD       - same with a DC-SSD log device
 *   ASYNC             - asynchronous commit upper bound
 *
 * The four configurations run concurrently on the sweep harness
 * (self-contained rigs, results identical to serial execution).
 *
 * Paper result (Section V-C): all four are nearly identical - PM+DC
 * about 0.6% BELOW and PM+ULL about 0.4% ABOVE the 2B-SSD baseline,
 * all close to ASYNC. The point: the hybrid store matches the
 * heterogeneous memory architecture without spending a DIMM slot.
 */

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_rigs.hh"
#include "bench_util.hh"
#include "db/minipg/minipg.hh"
#include "sim/sweep.hh"
#include "wal/pm_wal.hh"
#include "workload/runner.hh"

using namespace bssd;
using namespace bssd::bench;
using namespace bssd::workload;

namespace
{

constexpr unsigned kClients = 8;
constexpr sim::Tick kHorizon = sim::msOf(300);
constexpr std::uint64_t kSeed = 20180601;

double
run(wal::LogDevice &log)
{
    db::minipg::MiniPg pg(log);
    LinkbenchConfig cfg;
    cfg.nodeCount = 50'000;
    return runLinkbenchOnPg(pg, cfg, kClients, kHorizon, kSeed)
        .opsPerSec;
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Fig. 10",
           "heterogeneous memory vs hybrid store (minipg + Linkbench)");

    const char *labels[] = {"2B-SSD", "PM + ULL-SSD", "PM + DC-SSD",
                            "ASYNC"};
    std::vector<double> txns(4);
    std::vector<std::function<void()>> jobs = {
        [&txns] {
            ba::TwoBSsd dev;
            wal::BaWal log(dev, {});
            txns[0] = run(log);
        },
        [&txns] {
            host::PersistentMemory pm;
            ssd::SsdDevice dev(ssd::SsdConfig::ullSsd());
            wal::PmWal log(pm, dev, {});
            txns[1] = run(log);
        },
        [&txns] {
            host::PersistentMemory pm;
            ssd::SsdDevice dev(ssd::SsdConfig::dcSsd());
            wal::PmWal log(pm, dev, {});
            txns[2] = run(log);
        },
        [&txns] {
            wal::AsyncWal log;
            txns[3] = run(log);
        },
    };
    sim::runParallel(jobs, threadsArg(argc, argv));

    std::printf("%-14s %12s %12s\n", "config", "txn/s", "vs baseline");
    double base = txns[0];
    std::printf("%-14s %12.0f %11.2f%%\n", labels[0], base, 0.0);
    for (std::size_t i = 1; i < txns.size(); ++i) {
        std::printf("%-14s %12.0f %+11.2f%%\n", labels[i], txns[i],
                    (txns[i] / base - 1.0) * 100.0);
    }

    std::printf("\npaper: PM+DC ~ -0.6%%, PM+ULL ~ +0.4%%, all close "
                "to ASYNC -\n       the hybrid store equals a "
                "battery-backed DIMM without the DIMM slot\n");
    return 0;
}
